#include "exp/runner.hpp"

#include <algorithm>
#include <memory>

#include "chaos/injector.hpp"
#include "chaos/scenario.hpp"
#include "core/latency_model.hpp"
#include "exp/control_plane.hpp"
#include "exp/gossip_control_plane.hpp"
#include "util/logging.hpp"

namespace rasc::exp {

RunMetrics run_experiment(const RunConfig& config) {
  return run_experiment(config, nullptr);
}

RunMetrics run_experiment(const RunConfig& config,
                          std::vector<obs::MetricRow>* snapshot_out) {
  const bool gossip = config.control_plane == "gossip";
  const bool sharded =
      !gossip && (config.control_plane == "sharded" ||
                  (config.control_plane.empty() && config.coordinators > 1));
  WorldConfig world_config = config.world;
  // Lease accounting on the nodes relies on failed attempts being rolled
  // back (debits returned); pool debits in gossip mode likewise. Plain
  // centralized runs keep the configured policy.
  if (sharded || gossip) world_config.deploy_policy.rollback = true;
  World world(world_config);
  auto& simulator = world.simulator();

  auto workload_rng = simulator.rng().split(0x776f726b /* "work" */);
  auto requests = generate_workload(
      config.workload, world.service_names(), world.size(), workload_rng);

  // Predictive latency SLO: constructed only when a deadline is set —
  // deadline-off runs build no model, stamp no requests and create no
  // predict.*/slo.* cells (no RNG stream is involved either way).
  const bool deadline_on = config.deadline_ms > 0;
  std::unique_ptr<core::LatencyModel> latency_model;
  core::MinCostComposer::Options composer_options;
  if (deadline_on) {
    for (auto& request : requests) request.deadline_ms = config.deadline_ms;
    const sim::Topology& topo = world.network().topology();
    core::LatencyModel::Options lm_options;
    lm_options.link_latency_ms = [&topo](sim::NodeIndex a,
                                         sim::NodeIndex b) {
      if (a == b) return 0.0;
      return double(topo.latency_us[std::size_t(a)][std::size_t(b)]) /
             1000.0;
    };
    latency_model =
        std::make_unique<core::LatencyModel>(world.catalog(), lm_options);
    composer_options.latency_model = latency_model.get();
  }

  auto composer = make_composer(config.algorithm,
                                simulator.rng().split(0x636f6d70 /*comp*/),
                                composer_options);

  // Sharded control plane (coordinators > 1 only): constructed strictly
  // after the splits above so the unsharded random streams are untouched.
  std::unique_ptr<ShardControlPlane> plane;
  if (sharded) {
    ShardControlPlane::Config plane_config;
    plane_config.coordinators = config.coordinators;
    plane_config.admission_policy = config.admission_policy;
    plane_config.batch_window = config.batch_window;
    plane_config.lease_duration = config.lease_duration;
    plane_config.lease_renew = config.lease_renew;
    plane_config.algorithm = config.algorithm;
    plane_config.composer_options = composer_options;
    plane_config.standby = config.shard_standby;
    plane_config.standby_check = config.standby_check;
    plane_config.submit_retry = config.submit_retry;
    // Adopted apps get the run's deadline back (the original request's
    // SLO is not recoverable from runtime state).
    plane_config.default_deadline_ms = config.deadline_ms;
    plane_config.coordinators = std::max(plane_config.coordinators, 2);
    plane = std::make_unique<ShardControlPlane>(
        world, plane_config, simulator.rng().split(0x73686164 /*shad*/));
  }

  // Gossip control plane (--control-plane=gossip only): same construction
  // discipline — strictly after the splits above, so centralized and
  // sharded random streams are untouched.
  std::unique_ptr<GossipControlPlane> gossip_plane;
  if (gossip) {
    GossipControlPlane::Config plane_config;
    plane_config.agent.fanout = config.gossip_fanout;
    plane_config.agent.interval = config.gossip_interval;
    plane_config.agent.budget_bytes = config.gossip_budget_bytes;
    plane_config.agent.stale_rounds = config.gossip_stale_rounds;
    plane_config.composer.latency_model = composer_options.latency_model;
    gossip_plane = std::make_unique<GossipControlPlane>(
        world, plane_config, simulator.rng().split(0x676f7373 /*goss*/));
  }

  RunMetrics metrics;
  metrics.requests = int(requests.size());

  // Chaos setup. Everything below is conditional: with no scenario and
  // no SLO spec, no object is created, nothing is scheduled and no
  // random stream is touched, so the run is event-for-event identical
  // to a build without the chaos subsystem.
  const bool chaos_on =
      !config.chaos_scenario.empty() && config.chaos_scenario != "none";
  chaos::Scenario scenario;
  if (chaos_on) {
    scenario = chaos::parse_scenario(config.chaos_scenario);
    if (config.chaos_seed != 0) scenario.seed = config.chaos_seed;
  }
  const bool supervise = config.supervise || chaos_on;
  const bool adapt = config.adapt_interval > 0;
  core::RateAdapter::Params adapt_params;
  if (adapt) {
    adapt_params.interval = config.adapt_interval;
    adapt_params.hysteresis = config.adapt_hysteresis;
    // Quiet period after a shipped round: long enough for the deltas to
    // land and the windowed statistics to reflect them.
    adapt_params.cooldown = 2 * config.adapt_interval;
    if (config.adapt_predictive && deadline_on) {
      adapt_params.predictive = true;
      adapt_params.latency_model = latency_model.get();
    }
  }

  // Adoption callout: when a standby takes over a dead shard, re-attach
  // the adapter and supervisor on the standby's home — the same wiring a
  // fresh admission gets below, minus the metrics (the app was already
  // counted when first admitted).
  if (sharded && config.shard_standby) {
    plane->set_adopt_handler(
        [&simulator, &world, supervise, adapt, adapt_params](
            sim::NodeIndex home, const core::ServiceRequest& request,
            const runtime::AppPlan& plan,
            const std::map<std::string, std::vector<sim::NodeIndex>>&
                providers,
            sim::SimTime stream_stop) {
          simulator.exclusive([&world, supervise, adapt, adapt_params, home,
                               request, plan, providers, stream_stop] {
            auto& host = world.host(std::size_t(home));
            if (adapt) {
              host.enable_adapter(adapt_params)
                  .track(request, plan, providers, stream_stop);
            }
            if (supervise) {
              host.supervisor().watch(request, plan, stream_stop, {});
            }
          });
        });
  }

  const bool rehome = sharded && config.shard_standby;
  const sim::SimTime t0 = simulator.now();
  // Sharded runs hold submissions until every node's first lease grant
  // landed; gossip runs until the views had a full dissemination sweep;
  // unsharded runs start at t0 exactly as before.
  const sim::SimTime submit0 = sharded  ? t0 + plane->warmup()
                               : gossip ? t0 + gossip_plane->warmup()
                                        : t0;
  const sim::SimTime last_submit =
      submit0 + sim::SimDuration(requests.size()) * config.submit_gap;
  const sim::SimTime stream_stop =
      last_submit + config.steady_duration;
  const sim::SimTime run_end = stream_stop + config.drain;

  if (sharded) plane->start(t0);
  if (gossip) gossip_plane->start(t0);

  // Submit each request, staggered: through its source node's own
  // coordinator, or routed to its hash-owned shard when sharded.
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const auto& request = requests[i];
    const sim::SimTime when =
        submit0 + sim::SimDuration(i) * config.submit_gap;
    // The node whose host controls the admitted app: the shard home owns
    // the deployment (its coordinator sent it), so its adapter and
    // supervisor must watch the app, not the source's.
    const sim::NodeIndex ctl_node =
        sharded ? plane->home_of(plane->shard_of(request.app))
                : request.source;
    simulator.call_at(when, [&simulator, &world, &metrics, &request,
                             &composer, &plane, &gossip_plane, stream_stop,
                             supervise, adapt, adapt_params, sharded, gossip,
                             rehome, ctl_node] {
      auto on_outcome = [&simulator, &world, &metrics, &request,
                         &gossip_plane, stream_stop, supervise, adapt,
                         adapt_params, gossip, rehome,
                         ctl_node](const core::SubmitOutcome& outcome) {
        // The outcome handler mutates run-wide metrics and arms the
        // adapter/supervisor (which read cross-node state); under a
        // parallel simulation it must run with the LPs parked.
        simulator.exclusive([&world, &metrics, &request, &gossip_plane,
                             stream_stop, supervise, adapt, adapt_params,
                             gossip, rehome, ctl_node, outcome] {
          if (outcome.compose.admitted) {
            ++metrics.composed;
            metrics.components +=
                std::int64_t(outcome.compose.plan.component_count());
            for (const auto& sub : outcome.compose.plan.substreams) {
              metrics.stages += std::int64_t(sub.stages.size());
            }
            // Admission-time latency prediction, exported next to the
            // observed sink.delay_ms for the same app (only composers
            // running with a LatencyModel produce one).
            if (outcome.compose.predicted_latency_ms >= 0) {
              obs::Labels labels;
              labels.app = request.app;
              world.metrics()
                  .gauge("predict.latency_ms", labels)
                  .set(outcome.compose.predicted_latency_ms);
            }
            // The shard that actually admitted may differ from the hash
            // home computed at submission time (a standby takeover or a
            // failover re-homed the app). Only honored with standbys on:
            // plain runs keep the legacy static attachment byte-for-byte.
            const sim::NodeIndex admitted_on =
                rehome && outcome.admitted_by != sim::kInvalidNode
                    ? outcome.admitted_by
                    : ctl_node;
            auto& host = world.host(std::size_t(admitted_on));
            // Adapter before supervisor: watch() consults the adapter
            // as its first-line starvation response.
            if (adapt) {
              auto& adapter = host.enable_adapter(adapt_params);
              // Decentralized runs feed replanning snapshots from the
              // node-local gossip view instead of central stats queries.
              if (gossip) {
                gossip_plane->feed_adapter(std::size_t(ctl_node), adapter);
              }
              adapter.track(request, outcome.compose.plan,
                            outcome.providers, stream_stop);
            }
            if (supervise) {
              host.supervisor().watch(request, outcome.compose.plan,
                                      stream_stop, {});
            }
          } else {
            RASC_LOG(kDebug) << "app " << request.app
                             << " rejected: " << outcome.compose.error;
          }
        });
      };
      if (sharded) {
        plane->submit(request, /*stream_start=*/0, stream_stop,
                      std::move(on_outcome));
      } else if (gossip) {
        gossip_plane->submit(request, /*stream_start=*/0, stream_stop,
                             std::move(on_outcome));
      } else {
        world.host(std::size_t(request.source))
            .coordinator()
            .submit(request, *composer, /*stream_start=*/0, stream_stop,
                    std::move(on_outcome));
      }
    });
  }

  // Per-(app, window) SLO violation accounting: every slo_window, each
  // app's windowed mean delivery delay — reconstructed from the
  // sink.delay_ms histogram deltas, summed over that app's sinks — is
  // scored against the deadline; a window with deliveries before it but
  // none inside it counts as starved (violated). Scheduled only when a
  // deadline is set; the probe reads the registry inside ordinary global
  // events, which the parallel engine already runs exclusively.
  struct SloAppState {
    double sum_ms = 0;  // Σ mean·count over the app's delay cells
    std::int64_t count = 0;
  };
  auto slo_state = std::make_shared<std::map<std::int64_t, SloAppState>>();
  if (deadline_on && config.slo_window > 0) {
    auto* windows_cell = &world.metrics().counter("slo.windows");
    auto* violated_cell = &world.metrics().counter("slo.windows_violated");
    const double deadline = config.deadline_ms;
    auto probe = [&world, slo_state, windows_cell, violated_cell,
                  deadline] {
      std::map<std::int64_t, SloAppState> current;
      for (const auto& row : world.metrics().snapshot()) {
        if (row.name != "sink.delay_ms") continue;
        SloAppState& s = current[row.labels.app];
        s.sum_ms += row.mean * double(row.count);
        s.count += row.count;
      }
      for (const auto& [app, s] : current) {
        const auto last = slo_state->find(app);
        const double last_sum =
            last == slo_state->end() ? 0 : last->second.sum_ms;
        const std::int64_t last_count =
            last == slo_state->end() ? 0 : last->second.count;
        // A sink whose cell exists but never delivered is not yet
        // streaming — nothing to score.
        if (s.count == 0 && last_count == 0) continue;
        windows_cell->add();
        const std::int64_t delta = s.count - last_count;
        const bool violated =
            delta > 0 ? (s.sum_ms - last_sum) / double(delta) > deadline
                      : true;  // starved: delivered before, not now
        if (violated) violated_cell->add();
      }
      *slo_state = std::move(current);
    };
    for (sim::SimTime at = submit0 + config.slo_window; at <= stream_stop;
         at += config.slo_window) {
      simulator.call_at(at, probe);
    }
  }

  std::unique_ptr<chaos::SloChecker> slo_checker;
  if (config.slo.any()) {
    slo_checker = std::make_unique<chaos::SloChecker>(
        simulator, world.metrics(), config.slo);
    slo_checker->start(run_end);
  }

  std::unique_ptr<chaos::Injector> injector;
  if (chaos_on) {
    chaos::Hooks hooks;
    // A crashed node must also vanish from the overlay: its neighbors
    // drop it from their routing tables (re-discovery on restore is the
    // overlay's normal join path).
    hooks.on_crash = [&world](sim::NodeIndex victim) {
      for (std::size_t n = 0; n < world.size(); ++n) {
        if (sim::NodeIndex(n) != victim) {
          world.overlay().at(n).purge_peer(victim);
        }
      }
    };
    hooks.set_monitor_blackout = [&world](sim::NodeIndex node, bool on) {
      world.host(std::size_t(node)).monitor().set_blackout(on);
    };
    if (slo_checker != nullptr) {
      auto* checker = slo_checker.get();
      hooks.on_first_fault = [checker](sim::SimTime at) {
        checker->note_fault(at);
      };
    }
    injector = std::make_unique<chaos::Injector>(
        simulator, world.network(), scenario, std::move(hooks),
        &world.metrics());
    injector->arm(t0, run_end);
  }

  simulator.run_until(run_end);

  // Collect the §4.2 stream statistics from the live endpoints, in node
  // order. Sink stats are floating-point summaries whose merge order
  // matters for bit-exactness, and live endpoints exclude torn-down
  // applications (the registry's sink.* cells outlive teardown).
  for (std::size_t n = 0; n < world.size(); ++n) {
    const auto& rt = world.host(n).runtime();
    metrics.emitted += rt.total_emitted();
    const auto sink = rt.aggregate_sink_stats();
    metrics.delivered += sink.delivered;
    metrics.timely += sink.timely;
    metrics.out_of_order += sink.out_of_order;
    metrics.delay_ms.merge(sink.delay_ms);
    metrics.jitter_ms.merge(sink.jitter_ms);
  }

  // Drop totals come straight from the registry: integer counters, so
  // the label-order sum is exact and teardown cannot lose them.
  const auto& registry = world.metrics();
  metrics.drops_queue_full = registry.counter_total("runtime.drops_queue_full");
  metrics.drops_deadline = registry.counter_total("runtime.drops_deadline");
  metrics.unroutable = registry.counter_total("runtime.units_unroutable");
  metrics.drops_network = registry.counter_total("net.port_drops_out") +
                          registry.counter_total("net.port_drops_in");
  metrics.recoveries =
      registry.counter_total("supervisor.recoveries_succeeded");
  metrics.gave_up = registry.counter_total("supervisor.gave_up");
  metrics.adapt_attempts = registry.counter_total("adapt.attempts");
  metrics.adapt_deltas = registry.counter_total("adapt.deltas_shipped");
  metrics.adapt_teardowns = registry.counter_total("adapt.teardowns");
  metrics.deploy_retries = registry.counter_total("deploy.retries");
  metrics.deploy_rollbacks = registry.counter_total("deploy.rollbacks");
  metrics.orphans_reaped = registry.counter_total("orphan.reaped");
  metrics.slo_windows = registry.counter_total("slo.windows");
  metrics.slo_windows_violated =
      registry.counter_total("slo.windows_violated");
  metrics.predict_triggers = registry.counter_total("adapt.predict_triggers");
  metrics.shard_failovers = registry.counter_total("shard.failovers");
  metrics.shard_rehomes = registry.counter_total("shard.rehomes");
  metrics.shard_fenced = registry.counter_total("shard.fenced_msgs");
  metrics.shard_adopted = registry.counter_total("shard.adopted_apps");
  metrics.shard_reclaimed = registry.counter_total("shard.reclaimed_apps");
  metrics.shard_resubmits = registry.counter_total("shard.resubmits");
  metrics.shard_submitted = registry.counter_total("shard.submitted");
  metrics.shard_admitted = registry.counter_total("shard.admitted");
  metrics.shard_rejected = registry.counter_total("shard.rejected");
  metrics.shard_batches = registry.counter_total("shard.batches");
  metrics.shard_repairs = registry.counter_total("shard.repairs");
  metrics.lease_grants = registry.counter_total("lease.granted");
  metrics.lease_nacks = registry.counter_total("lease.nacks");
  metrics.lease_expired = registry.counter_total("lease.expired");
  metrics.gossip_submitted = registry.counter_total("gossip.submitted");
  metrics.gossip_admitted = registry.counter_total("gossip.admitted");
  metrics.gossip_rejected = registry.counter_total("gossip.rejected");
  metrics.gossip_repairs = registry.counter_total("gossip.repairs");
  metrics.gossip_sends = registry.counter_total("gossip.sends");
  metrics.gossip_sent_bytes = registry.counter_total("gossip.sent_bytes");
  metrics.gossip_merges = registry.counter_total("gossip.merges_fresh");
  metrics.gossip_prunes = registry.counter_total("gossip.prunes");
  for (std::size_t n = 0; n < world.size(); ++n) {
    const auto* granter = world.host(n).lease_granter();
    if (granter != nullptr) {
      metrics.lease_overgrant_kbps = std::max(
          metrics.lease_overgrant_kbps, granter->overgrant_high_water_kbps());
    }
  }

  if (injector != nullptr) {
    metrics.faults_injected = injector->applied();
    if (!config.chaos_timeline_csv.empty()) {
      injector->write_timeline_csv(config.chaos_timeline_csv);
    }
  }
  if (slo_checker != nullptr) {
    const auto report =
        slo_checker->finalize(chaos_on ? scenario.name : "none");
    metrics.slo_pass = report.pass ? 1 : 0;
    if (report.recovery_us >= 0) {
      metrics.recovery_ms = sim::to_seconds(report.recovery_us) * 1000.0;
    }
    if (!config.slo_report.empty()) {
      chaos::SloChecker::write_report(report, config.slo_report);
    }
  }

  if (snapshot_out != nullptr) *snapshot_out = registry.snapshot();
  if (!config.metrics_csv.empty()) registry.write_csv(config.metrics_csv);
  if (!config.metrics_json.empty()) registry.write_json(config.metrics_json);
  return metrics;
}

}  // namespace rasc::exp
