#include "exp/runner.hpp"

#include <memory>
#include <stdexcept>

#include "core/greedy_composer.hpp"
#include "core/mincost_composer.hpp"
#include "core/random_composer.hpp"
#include "util/logging.hpp"

namespace rasc::exp {

namespace {

std::unique_ptr<core::Composer> make_composer(const std::string& name,
                                              util::Xoshiro256 rng) {
  if (name == "mincost") return std::make_unique<core::MinCostComposer>();
  if (name == "mincost-nosplit") {
    core::MinCostComposer::Options options;
    options.single_instance_per_stage = true;
    return std::make_unique<core::MinCostComposer>(options);
  }
  if (name == "mincost-nocpu") {
    core::MinCostComposer::Options options;
    options.consider_cpu = false;
    return std::make_unique<core::MinCostComposer>(options);
  }
  if (name == "greedy") return std::make_unique<core::GreedyComposer>(rng);
  if (name == "random") {
    return std::make_unique<core::RandomComposer>(rng);
  }
  throw std::invalid_argument("unknown algorithm: " + name);
}

}  // namespace

RunMetrics run_experiment(const RunConfig& config) {
  return run_experiment(config, nullptr);
}

RunMetrics run_experiment(const RunConfig& config,
                          std::vector<obs::MetricRow>* snapshot_out) {
  World world(config.world);
  auto& simulator = world.simulator();

  auto workload_rng = simulator.rng().split(0x776f726b /* "work" */);
  const auto requests = generate_workload(
      config.workload, world.service_names(), world.size(), workload_rng);

  auto composer = make_composer(config.algorithm,
                                simulator.rng().split(0x636f6d70 /*comp*/));

  RunMetrics metrics;
  metrics.requests = int(requests.size());

  const sim::SimTime t0 = simulator.now();
  const sim::SimTime last_submit =
      t0 + sim::SimDuration(requests.size()) * config.submit_gap;
  const sim::SimTime stream_stop =
      last_submit + config.steady_duration;
  const sim::SimTime run_end = stream_stop + config.drain;

  // Submit each request from its source node's coordinator, staggered.
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const auto& request = requests[i];
    const sim::SimTime when = t0 + sim::SimDuration(i) * config.submit_gap;
    simulator.call_at(when, [&world, &metrics, &request, &composer,
                             stream_stop] {
      auto& coordinator =
          world.host(std::size_t(request.source)).coordinator();
      coordinator.submit(
          request, *composer, /*stream_start=*/0, stream_stop,
          [&metrics, &request](const core::SubmitOutcome& outcome) {
            if (outcome.compose.admitted) {
              ++metrics.composed;
              metrics.components +=
                  std::int64_t(outcome.compose.plan.component_count());
              for (const auto& sub : outcome.compose.plan.substreams) {
                metrics.stages += std::int64_t(sub.stages.size());
              }
            } else {
              RASC_LOG(kDebug)
                  << "app " << request.app
                  << " rejected: " << outcome.compose.error;
            }
          });
    });
  }

  simulator.run_until(run_end);

  // Collect the §4.2 stream statistics from the live endpoints, in node
  // order. Sink stats are floating-point summaries whose merge order
  // matters for bit-exactness, and live endpoints exclude torn-down
  // applications (the registry's sink.* cells outlive teardown).
  for (std::size_t n = 0; n < world.size(); ++n) {
    const auto& rt = world.host(n).runtime();
    metrics.emitted += rt.total_emitted();
    const auto sink = rt.aggregate_sink_stats();
    metrics.delivered += sink.delivered;
    metrics.timely += sink.timely;
    metrics.out_of_order += sink.out_of_order;
    metrics.delay_ms.merge(sink.delay_ms);
    metrics.jitter_ms.merge(sink.jitter_ms);
  }

  // Drop totals come straight from the registry: integer counters, so
  // the label-order sum is exact and teardown cannot lose them.
  const auto& registry = world.metrics();
  metrics.drops_queue_full = registry.counter_total("runtime.drops_queue_full");
  metrics.drops_deadline = registry.counter_total("runtime.drops_deadline");
  metrics.unroutable = registry.counter_total("runtime.units_unroutable");
  metrics.drops_network = registry.counter_total("net.port_drops_out") +
                          registry.counter_total("net.port_drops_in");

  if (snapshot_out != nullptr) *snapshot_out = registry.snapshot();
  if (!config.metrics_csv.empty()) registry.write_csv(config.metrics_csv);
  if (!config.metrics_json.empty()) registry.write_json(config.metrics_json);
  return metrics;
}

}  // namespace rasc::exp
