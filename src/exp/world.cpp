#include "exp/world.hpp"

#include <algorithm>
#include <stdexcept>

#include "overlay/registry.hpp"
#include "util/logging.hpp"

namespace rasc::exp {

World::World(const WorldConfig& config) : config_(config) {
  trace_.set_enabled(config.enable_unit_trace);
  simulator_ = std::make_unique<sim::Simulator>(config.seed);

  auto topo_rng = simulator_->rng().split(0x746f706f /* "topo" */);
  auto topology =
      sim::make_planetlab_like(config.nodes, topo_rng, config.net);

  if (config.sim_threads > 1) {
    if (trace_.enabled()) {
      RASC_LOG(kWarn) << "unit tracing is unsupported with --sim-threads > 1;"
                      << " disabling the trace";
      trace_.set_enabled(false);
    }
    // One LP per simulated node; the lookahead is the topology's minimum
    // jittered cross-node latency, which bounds how far ahead any LP can
    // be affected by another.
    sim::Simulator::ParallelConfig pc;
    pc.threads = config.sim_threads;
    pc.num_lps = config.nodes;
    pc.lookahead = sim::conservative_lookahead(topology);
    simulator_->enable_parallel(pc);
  }

  network_ = std::make_unique<sim::Network>(*simulator_, std::move(topology),
                                            &metrics_, &trace_);

  overlay_ = std::make_unique<overlay::Overlay>(
      overlay::build_overlay(*simulator_, *network_, config.nodes));

  // Service catalog: caller-provided specs, or generated svc0..svcN with
  // heterogeneous CPU costs and rate ratio 1 (the paper's evaluated
  // case; examples exercise R != 1 via custom_services).
  if (!config.custom_services.empty()) {
    config_.num_services = int(config.custom_services.size());
    for (const auto& spec : config.custom_services) {
      catalog_.add(spec);
      service_names_.push_back(spec.name);
    }
  } else {
    auto svc_rng = simulator_->rng().split(0x73766373 /* "svcs" */);
    for (int s = 0; s < config.num_services; ++s) {
      runtime::ServiceSpec spec;
      spec.name = "svc" + std::to_string(s);
      spec.cpu_time_per_unit = svc_rng.uniform_int(config.service_cpu_min,
                                                   config.service_cpu_max);
      catalog_.add(spec);
      service_names_.push_back(spec.name);
    }
  }

  // Assign services to nodes: each node offers `services_per_node`
  // distinct services (paper §4.1).
  auto assign_rng = simulator_->rng().split(0x61736767 /* "assg" */);
  services_on_node_.resize(config.nodes);
  std::vector<bool> covered(std::size_t(config_.num_services), false);
  for (std::size_t n = 0; n < config.nodes; ++n) {
    std::vector<int> ids(std::size_t(config_.num_services));
    for (int s = 0; s < config_.num_services; ++s) ids[std::size_t(s)] = s;
    assign_rng.shuffle(ids);
    for (int k = 0; k < config.services_per_node &&
                    k < config_.num_services;
         ++k) {
      services_on_node_[n].push_back(service_names_[std::size_t(ids[std::size_t(k)])]);
      covered[std::size_t(ids[std::size_t(k)])] = true;
    }
  }
  // Guarantee every service has at least one provider.
  for (int s = 0; s < config_.num_services; ++s) {
    if (!covered[std::size_t(s)]) {
      services_on_node_[std::size_t(s) % config.nodes].push_back(
          service_names_[std::size_t(s)]);
    }
  }

  // Hosts (monitor + runtime + coordinator per node), wired as the
  // overlay's non-overlay packet handler.
  hosts_.reserve(config.nodes);
  for (std::size_t n = 0; n < config.nodes; ++n) {
    hosts_.push_back(std::make_unique<Host>(
        *simulator_, *network_, overlay_->at(n), catalog_,
        config.monitor_params, config.runtime_params, &metrics_, &trace_,
        config.deploy_policy));
    Host* host = hosts_.back().get();
    overlay_->set_fallback(
        n, [host](const sim::Packet& p) { host->handle_packet(p); });
  }

  // Register every (service, node) pair in the DHT and wait for the
  // acks. Registrations are staggered (a synchronized burst of puts plus
  // their leaf-set replication would overflow the bounded port queues on
  // low-bandwidth topologies) and retried once on timeout.
  std::size_t outstanding = 0;
  bool failed = false;
  sim::SimDuration offset = 0;
  for (std::size_t n = 0; n < config.nodes; ++n) {
    for (const auto& service : services_on_node_[n]) {
      ++outstanding;
      offset += sim::msec(15);
      overlay::PastryNode* node = &overlay_->at(n);
      simulator_->call_after(offset, [node, service, n, &outstanding,
                                      &failed] {
        overlay::ServiceRegistry registry(*node);
        registry.register_provider(
            service, sim::NodeIndex(n),
            [node, service, n, &outstanding, &failed](bool ok) {
              if (ok) {
                --outstanding;
                return;
              }
              overlay::ServiceRegistry retry(*node);
              retry.register_provider(service, sim::NodeIndex(n),
                                      [&outstanding, &failed](bool ok2) {
                                        if (!ok2) failed = true;
                                        --outstanding;
                                      });
            });
      });
    }
  }
  while (outstanding > 0 && simulator_->step()) {
  }
  if (outstanding > 0 || failed) {
    throw std::runtime_error("World: service registration failed");
  }
  // Let replication traffic settle.
  simulator_->run_until(simulator_->now() + sim::msec(500));
}

}  // namespace rasc::exp
