// Sharded control plane assembly: K coordinator shards over one World.
//
// Enables a capacity-lease granter on every host (each partitioning its
// bandwidth among the K shards), homes shard s on node floor(s*N/K), and
// gives each shard its own composer instance and lease view. Requests
// route to hash-owned shards with SubmitShardMsg; admission then runs as
// batched composition against the shard's leased view (see
// core/coordinator_shard.hpp).
//
// Constructed only when a run asks for more than one coordinator: an
// unsharded run never instantiates granters, shards or their registry
// cells and stays byte-identical to builds without this subsystem.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/coordinator_shard.hpp"
#include "exp/world.hpp"

namespace rasc::exp {

/// Builds the composition algorithm by name ("mincost", "greedy", ...;
/// shared by the runner and the shard control plane). `options` seeds the
/// min-cost cost model (the "mincost-nosplit"/"mincost-nocpu" variants
/// overlay their ablation switch on top); baselines ignore it.
std::unique_ptr<core::Composer> make_composer(
    const std::string& name, util::Xoshiro256 rng,
    core::MinCostComposer::Options options = {});

class ShardControlPlane {
 public:
  struct Config {
    int coordinators = 2;
    /// "fifo", "smallest-demand" or "highest-value".
    std::string admission_policy = "fifo";
    sim::SimDuration batch_window = sim::msec(100);
    /// Node-side grant lifetime and shard-side renewal cadence.
    sim::SimDuration lease_duration = sim::sec(12);
    sim::SimDuration lease_renew = sim::sec(5);
    /// Spacing of per-node lease requests inside one renewal sweep.
    sim::SimDuration lease_stagger = sim::msec(1);
    int repair_attempts = 2;
    /// Composition algorithm every shard runs (its own instance).
    std::string algorithm = "mincost";
    /// Cost-model knobs handed to every shard's composer (latency SLO
    /// admission rides in here; defaults change nothing).
    core::MinCostComposer::Options composer_options;

    // --- Shard re-homing (all off by default: byte-inert) ---
    /// Give every shard a dormant standby coordinator on another node
    /// (requires nodes >= 2K; silently disabled otherwise). The standby
    /// detects the primary's death through its local granter, fences it
    /// with a takeover epoch, reconstructs the shard state from the
    /// fleet and adopts the orphaned apps.
    bool standby = false;
    sim::SimDuration standby_check = sim::msec(500);
    sim::SimDuration reconstruct_timeout = sim::sec(1);
    /// Deadline stamped on adopted requests (the original SLO is not
    /// recoverable from runtime state).
    double default_deadline_ms = 0;
    /// Source-side submission journal: when > 0, a submission whose
    /// outcome has not arrived after this long is re-submitted (the
    /// routing re-checks shard suspicion), up to submit_retries times —
    /// covering requests that died in a crashed primary's batch window.
    /// 0 (default) keeps the journal off and the plane byte-inert.
    sim::SimDuration submit_retry = 0;
    /// Bound on journal re-submissions and on the backoff retries of the
    /// all-shards-suspect path.
    int submit_retries = 2;
  };

  /// Wires granters and shards into `world`'s hosts. `rng` seeds the
  /// per-shard composer randomness (split per shard).
  ShardControlPlane(World& world, Config config, util::Xoshiro256 rng);
  ~ShardControlPlane();

  ShardControlPlane(const ShardControlPlane&) = delete;
  ShardControlPlane& operator=(const ShardControlPlane&) = delete;

  /// Starts every shard's lease renewals and batch cadence at `at`.
  void start(sim::SimTime at);

  /// Time from start() until every node holds a first-grant request:
  /// submissions before this see empty lease views and reject.
  sim::SimDuration warmup() const;

  int shards() const { return int(shards_.size()); }
  std::int32_t shard_of(runtime::AppId app) const {
    return core::CoordinatorShard::shard_of(app, shards());
  }
  sim::NodeIndex home_of(std::int32_t shard) const {
    return shards_[std::size_t(shard)]->home();
  }
  core::CoordinatorShard& shard(std::int32_t s) {
    return *shards_[std::size_t(s)];
  }
  /// Standby home of `shard`, or kInvalidNode when it has none.
  sim::NodeIndex standby_home(std::int32_t shard) const {
    return std::size_t(shard) < standby_homes_.size()
               ? standby_homes_[std::size_t(shard)]
               : sim::kInvalidNode;
  }
  /// The standby instance of `shard` (null when standbys are off).
  core::CoordinatorShard* standby(std::int32_t s) {
    return std::size_t(s) < standbys_.size() ? standbys_[std::size_t(s)].get()
                                             : nullptr;
  }

  /// Installs the adoption callout on every standby (see
  /// CoordinatorShard::AdoptHandler).
  void set_adopt_handler(core::CoordinatorShard::AdoptHandler handler);

  /// Routes `request` from its source node to its owning shard's
  /// admission queue. Call from a simulation event (the routing message
  /// costs wire time like any control packet).
  void submit(const core::ServiceRequest& request, sim::SimTime stream_start,
              sim::SimTime stream_stop, core::Coordinator::Callback done);

 private:
  /// Journal entry of a submission whose outcome is still pending
  /// (config.submit_retry > 0 only).
  struct Pending {
    core::ServiceRequest request;
    sim::SimTime stream_start = 0;
    sim::SimTime stream_stop = 0;
    core::Coordinator::Callback done;
    int attempts = 0;
  };

  /// One routing decision + send. Re-entered by the journal and by the
  /// all-suspect backoff path.
  void dispatch(const core::ServiceRequest& request,
                sim::SimTime stream_start, sim::SimTime stream_stop,
                core::Coordinator::Callback done);
  /// Exactly-once resolution of a journaled submission: the original and
  /// a re-submitted copy can both produce outcomes; the first one wins.
  void resolve_pending(runtime::AppId app, core::SubmitOutcome outcome);
  void retry_pending(runtime::AppId app);
  obs::Counter& lazy_counter(const char* name, obs::Counter*& slot);

  World& world_;
  Config config_;
  std::vector<std::unique_ptr<core::CoordinatorShard>> shards_;
  std::vector<std::unique_ptr<core::CoordinatorShard>> standbys_;
  /// Standby home per shard (empty when standbys are off).
  std::vector<sim::NodeIndex> standby_homes_;
  /// Journaled submissions awaiting an outcome, by app.
  std::map<runtime::AppId, Pending> pending_;
  /// Backoff attempts of the all-shards-suspect path, by app.
  std::map<runtime::AppId, int> unreachable_attempts_;
  /// Submissions rerouted away from a dead shard (cell created lazily on
  /// the first failover: healthy runs stay byte-identical).
  obs::Counter* failovers_ = nullptr;
  obs::Counter* resubmits_ = nullptr;
  obs::Counter* submit_retries_ = nullptr;
};

}  // namespace rasc::exp
