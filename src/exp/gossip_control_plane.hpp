// Decentralized (gossip) control plane: every node is its own admission
// point.
//
// Each host runs a gossip::Agent maintaining a budgeted partial view of
// the fleet's load summaries, and a core::GossipComposer that places
// requests hop-by-hop from that view. A request submits at its source
// node: service providers are discovered through the DHT as usual, their
// *stats* however come from the local gossip view instead of a stats
// query fan-out — composition costs no extra control round-trips, at the
// price of bounded staleness. Deploys are stamped with the leaseless
// kPoolShard sentinel, so every target node's LeaseGranter debits its
// live pool as the authoritative admission check; a mid-deploy NACK rolls
// the attempt back (PR-5 epoch machinery), marks the NACKing nodes
// suspect in the local view and recomposes, bounded by repair_attempts.
//
// Constructed only for --control-plane=gossip runs: a centralized or
// sharded run never instantiates agents, never interns the gossip.digest
// message kind, and stays byte-identical to builds without this
// subsystem.
#pragma once

#include <memory>
#include <vector>

#include "core/gossip_composer.hpp"
#include "core/rate_adapter.hpp"
#include "exp/world.hpp"
#include "gossip/agent.hpp"
#include "overlay/registry.hpp"

namespace rasc::exp {

class GossipControlPlane {
 public:
  struct Config {
    gossip::Agent::Params agent;
    /// NACK-repair recompositions allowed per request.
    int repair_attempts = 2;
    /// Rounds of dissemination before submissions open; 0 = derive from
    /// fleet size and digest capacity (full view coverage plus margin).
    int warmup_rounds = 0;
    core::GossipComposer::Options composer;
  };

  /// Wires a gossip agent, composer and DHT client into every host and
  /// enables each node's lease granter as the pool-debit authority.
  /// `rng` seeds the per-node agent rotation streams.
  GossipControlPlane(World& world, Config config, util::Xoshiro256 rng);
  ~GossipControlPlane();

  GossipControlPlane(const GossipControlPlane&) = delete;
  GossipControlPlane& operator=(const GossipControlPlane&) = delete;

  /// Starts every agent's round timer at `at` (phase-staggered per node).
  void start(sim::SimTime at);

  /// Time from start() until every view has had one full dissemination
  /// sweep; submissions before this see mostly-empty views and reject.
  sim::SimDuration warmup() const;

  /// Composes and deploys `request` at its source node from the local
  /// partial view. Call from a simulation event.
  void submit(const core::ServiceRequest& request, sim::SimTime stream_start,
              sim::SimTime stream_stop, core::Coordinator::Callback done);

  /// Points `adapter` (living on `node`) at the node-local gossip view
  /// for its replanning snapshots, instead of the central StatsAgent
  /// round-trip that would defeat the decentralized plane. Targets absent
  /// from the view are simply omitted — the adapter already treats a
  /// missing snapshot as an unusable candidate (and skips the round when
  /// an endpoint is missing), mirroring composition's staleness
  /// semantics.
  void feed_adapter(std::size_t node, core::RateAdapter& adapter);

  gossip::Agent& agent(std::size_t node) { return *clients_[node].agent; }

 private:
  struct Client {
    std::unique_ptr<gossip::Agent> agent;
    std::unique_ptr<core::GossipComposer> composer;
    std::unique_ptr<overlay::ServiceRegistry> registry;
  };

  struct Pending;
  void compose_and_deploy(const std::shared_ptr<Pending>& pending);
  void finish(const std::shared_ptr<Pending>& pending,
              const core::SubmitOutcome& outcome);

  World& world_;
  Config config_;
  std::vector<Client> clients_;
  /// Digest entries one peer's digest can carry (derived from the budget).
  std::int64_t digest_capacity_ = 0;

  obs::Counter* submitted_;
  obs::Counter* admitted_;
  obs::Counter* rejected_;
  obs::Counter* repairs_;
};

}  // namespace rasc::exp
