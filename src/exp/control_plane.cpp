#include "exp/control_plane.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/greedy_composer.hpp"
#include "core/mincost_composer.hpp"
#include "core/random_composer.hpp"

namespace rasc::exp {

std::unique_ptr<core::Composer> make_composer(
    const std::string& name, util::Xoshiro256 rng,
    core::MinCostComposer::Options options) {
  if (name == "mincost") {
    return std::make_unique<core::MinCostComposer>(options);
  }
  if (name == "mincost-nosplit") {
    options.single_instance_per_stage = true;
    return std::make_unique<core::MinCostComposer>(options);
  }
  if (name == "mincost-nocpu") {
    options.consider_cpu = false;
    return std::make_unique<core::MinCostComposer>(options);
  }
  if (name == "greedy") return std::make_unique<core::GreedyComposer>(rng);
  if (name == "random") {
    return std::make_unique<core::RandomComposer>(rng);
  }
  throw std::invalid_argument("unknown algorithm: " + name);
}

ShardControlPlane::ShardControlPlane(World& world, Config config,
                                     util::Xoshiro256 rng)
    : world_(world), config_(config) {
  const std::size_t nodes = world.size();
  const int k =
      std::max(1, std::min(config_.coordinators, int(nodes)));
  config_.coordinators = k;

  // Every node partitions its capacity among the K shards.
  runtime::LeaseGranter::Params granter_params;
  granter_params.lease_duration = config_.lease_duration;
  granter_params.shards = k;
  for (std::size_t n = 0; n < nodes; ++n) {
    world.host(n).enable_lease_granter(granter_params);
  }

  const auto policy = core::parse_admission_policy(config_.admission_policy);
  for (int s = 0; s < k; ++s) {
    // Even spread over the node id space (node ids are dense 0..N-1).
    const auto home =
        sim::NodeIndex((std::size_t(s) * nodes) / std::size_t(k));
    core::CoordinatorShard::Params params;
    params.shard = s;
    params.nodes = nodes;
    params.batch_window = config_.batch_window;
    params.policy = policy;
    params.repair_attempts = config_.repair_attempts;
    params.lease.renew_period = config_.lease_renew;
    params.lease.stagger = config_.lease_stagger;
    auto& host = world.host(std::size_t(home));
    shards_.push_back(std::make_unique<core::CoordinatorShard>(
        world.simulator(), world.network(), world.overlay().at(std::size_t(home)),
        host.stats_agent(), host.coordinator(), world.catalog(),
        make_composer(config_.algorithm,
                      rng.split(0x73686172u /* "shar" */ ^ std::uint64_t(s)),
                      config_.composer_options),
        params, &world.metrics()));
    host.set_shard(shards_.back().get());
  }
}

ShardControlPlane::~ShardControlPlane() {
  for (const auto& shard : shards_) {
    world_.host(std::size_t(shard->home())).set_shard(nullptr);
  }
}

void ShardControlPlane::start(sim::SimTime at) {
  for (const auto& shard : shards_) shard->start(at);
}

sim::SimDuration ShardControlPlane::warmup() const {
  // One full renewal sweep (staggered across the fleet), plus a second
  // for the last grants' round trips to land.
  return config_.lease_stagger * std::int64_t(world_.size()) + sim::sec(1);
}

void ShardControlPlane::submit(const core::ServiceRequest& request,
                               sim::SimTime stream_start,
                               sim::SimTime stream_stop,
                               core::Coordinator::Callback done) {
  std::int32_t shard = shard_of(request.app);
  // Fail fast on a dead shard: the source node's own granter knows when a
  // coordinator stopped renewing its lease (an expired grant means ~7 s
  // of missed renewals at the default cadence). Submitting there anyway
  // would hang until the 5 s deploy timeout; reroute to the next live
  // shard instead. Healthy runs never enter this branch.
  const auto* granter =
      world_.host(std::size_t(request.source)).lease_granter();
  if (granter != nullptr && granter->holder_suspect(shard)) {
    const int k = shards();
    for (int i = 1; i < k; ++i) {
      const auto next = std::int32_t((shard + i) % k);
      if (granter->holder_suspect(next)) continue;
      shard = next;
      if (failovers_ == nullptr) {
        failovers_ = &world_.metrics().counter("shard.failovers", {});
      }
      failovers_->add();
      break;
    }
  }
  const auto home = home_of(shard);
  auto msg = std::make_shared<core::SubmitShardMsg>();
  msg->request = request;
  msg->stream_start = stream_start;
  msg->stream_stop = stream_stop;
  msg->done = std::move(done);
  const auto size = msg->wire_size();
  world_.network().send(request.source, home, size, std::move(msg));
}

}  // namespace rasc::exp
