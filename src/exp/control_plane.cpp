#include "exp/control_plane.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/greedy_composer.hpp"
#include "core/mincost_composer.hpp"
#include "core/random_composer.hpp"

namespace rasc::exp {
namespace {

/// Base delay of the all-shards-suspect backoff (attempt n waits n of
/// these): long enough for a takeover or restart to become visible, and
/// with the default 2-attempt budget still rejects well inside one
/// deploy timeout.
constexpr sim::SimDuration kUnreachableBackoff = sim::sec(1);

}  // namespace

std::unique_ptr<core::Composer> make_composer(
    const std::string& name, util::Xoshiro256 rng,
    core::MinCostComposer::Options options) {
  if (name == "mincost") {
    return std::make_unique<core::MinCostComposer>(options);
  }
  if (name == "mincost-nosplit") {
    options.single_instance_per_stage = true;
    return std::make_unique<core::MinCostComposer>(options);
  }
  if (name == "mincost-nocpu") {
    options.consider_cpu = false;
    return std::make_unique<core::MinCostComposer>(options);
  }
  if (name == "greedy") return std::make_unique<core::GreedyComposer>(rng);
  if (name == "random") {
    return std::make_unique<core::RandomComposer>(rng);
  }
  throw std::invalid_argument("unknown algorithm: " + name);
}

ShardControlPlane::ShardControlPlane(World& world, Config config,
                                     util::Xoshiro256 rng)
    : world_(world), config_(config) {
  const std::size_t nodes = world.size();
  const int k =
      std::max(1, std::min(config_.coordinators, int(nodes)));
  config_.coordinators = k;

  // Every node partitions its capacity among the K shards.
  runtime::LeaseGranter::Params granter_params;
  granter_params.lease_duration = config_.lease_duration;
  granter_params.shards = k;
  for (std::size_t n = 0; n < nodes; ++n) {
    world.host(n).enable_lease_granter(granter_params);
  }

  const auto policy = core::parse_admission_policy(config_.admission_policy);
  for (int s = 0; s < k; ++s) {
    // Even spread over the node id space (node ids are dense 0..N-1).
    const auto home =
        sim::NodeIndex((std::size_t(s) * nodes) / std::size_t(k));
    core::CoordinatorShard::Params params;
    params.shard = s;
    params.nodes = nodes;
    params.batch_window = config_.batch_window;
    params.policy = policy;
    params.repair_attempts = config_.repair_attempts;
    params.lease.renew_period = config_.lease_renew;
    params.lease.stagger = config_.lease_stagger;
    auto& host = world.host(std::size_t(home));
    shards_.push_back(std::make_unique<core::CoordinatorShard>(
        world.simulator(), world.network(), world.overlay().at(std::size_t(home)),
        host.stats_agent(), host.coordinator(), world.catalog(),
        make_composer(config_.algorithm,
                      rng.split(0x73686172u /* "shar" */ ^ std::uint64_t(s)),
                      config_.composer_options),
        params, &world.metrics()));
    host.set_shard(shards_.back().get());
  }

  // Dormant standbys, one per shard, each on a node of its own. The home
  // (2s+1)*N/(2K) interleaves halfway between consecutive primary homes
  // s*N/K and (s+1)*N/K; with N >= 2K the 2K numerators m*N/(2K) are
  // strictly increasing, so every standby lands on a node no primary (and
  // no other standby) occupies. Constructed after ALL primaries so their
  // composer rng splits extend the primary sequence: runs with standbys
  // off draw exactly the seed's stream.
  if (config_.standby && nodes >= 2 * std::size_t(k)) {
    for (int s = 0; s < k; ++s) {
      const auto home = sim::NodeIndex(
          ((2 * std::size_t(s) + 1) * nodes) / (2 * std::size_t(k)));
      core::CoordinatorShard::Params params;
      params.shard = s;
      params.nodes = nodes;
      params.batch_window = config_.batch_window;
      params.policy = policy;
      params.repair_attempts = config_.repair_attempts;
      params.lease.renew_period = config_.lease_renew;
      params.lease.stagger = config_.lease_stagger;
      params.standby = true;
      params.primary_home = home_of(s);
      params.standby_check = config_.standby_check;
      params.reconstruct_timeout = config_.reconstruct_timeout;
      params.default_deadline_ms = config_.default_deadline_ms;
      auto& host = world.host(std::size_t(home));
      standbys_.push_back(std::make_unique<core::CoordinatorShard>(
          world.simulator(), world.network(),
          world.overlay().at(std::size_t(home)), host.stats_agent(),
          host.coordinator(), world.catalog(),
          make_composer(
              config_.algorithm,
              rng.split(0x73746279u /* "stby" */ ^ std::uint64_t(s)),
              config_.composer_options),
          params, &world.metrics()));
      standbys_.back()->set_local_granter(host.lease_granter());
      host.set_shard(standbys_.back().get());
      standby_homes_.push_back(home);
    }
  }
}

ShardControlPlane::~ShardControlPlane() {
  for (const auto& shard : shards_) {
    world_.host(std::size_t(shard->home())).set_shard(nullptr);
  }
  for (const auto& standby : standbys_) {
    world_.host(std::size_t(standby->home())).set_shard(nullptr);
  }
}

void ShardControlPlane::start(sim::SimTime at) {
  for (const auto& shard : shards_) shard->start(at);
  for (const auto& standby : standbys_) standby->start(at);
}

void ShardControlPlane::set_adopt_handler(
    core::CoordinatorShard::AdoptHandler handler) {
  for (const auto& standby : standbys_) {
    standby->set_adopt_handler(handler);
  }
}

sim::SimDuration ShardControlPlane::warmup() const {
  // One full renewal sweep (staggered across the fleet), plus a second
  // for the last grants' round trips to land.
  return config_.lease_stagger * std::int64_t(world_.size()) + sim::sec(1);
}

void ShardControlPlane::submit(const core::ServiceRequest& request,
                               sim::SimTime stream_start,
                               sim::SimTime stream_stop,
                               core::Coordinator::Callback done) {
  if (config_.submit_retry <= 0) {
    dispatch(request, stream_start, stream_stop, std::move(done));
    return;
  }
  // Journal the submission at the source before anything goes on the
  // wire: a copy that dies in a crashed primary's batch window leaves no
  // trace anywhere else, so the source is the only place that can notice
  // the missing outcome and re-submit.
  const auto app = request.app;
  Pending pending;
  pending.request = request;
  pending.stream_start = stream_start;
  pending.stream_stop = stream_stop;
  pending.done = std::move(done);
  pending_.insert_or_assign(app, std::move(pending));
  dispatch(request, stream_start, stream_stop,
           [this, app](const core::SubmitOutcome& outcome) {
             resolve_pending(app, outcome);
           });
  world_.simulator().call_after(config_.submit_retry,
                                [this, app] { retry_pending(app); });
}

void ShardControlPlane::dispatch(const core::ServiceRequest& request,
                                 sim::SimTime stream_start,
                                 sim::SimTime stream_stop,
                                 core::Coordinator::Callback done) {
  std::int32_t shard = shard_of(request.app);
  auto home = home_of(shard);
  const auto* granter =
      world_.host(std::size_t(request.source)).lease_granter();
  // Route to whoever actually holds the shard's lease on this node: the
  // hash home normally, the standby once a takeover's renewals land here
  // (the dead primary's home would silently eat the submission).
  if (granter != nullptr) {
    if (const auto holder = granter->holder_of(shard);
        holder != sim::kInvalidNode) {
      home = holder;
    }
  }
  // Fail fast on a dead shard: the source node's own granter knows when a
  // coordinator stopped renewing its lease (an expired grant means ~7 s
  // of missed renewals at the default cadence). Submitting there anyway
  // would hang until the 5 s deploy timeout; route around it instead.
  // Healthy runs never enter this branch.
  if (granter != nullptr && granter->holder_suspect(shard)) {
    if (const auto standby = standby_home(shard);
        standby != sim::kInvalidNode) {
      // The shard's designated successor owns it after takeover; while
      // still dormant it forwards to the primary, so routing there early
      // is harmless.
      home = standby;
      lazy_counter("shard.failovers", failovers_).add();
    } else {
      bool rerouted = false;
      const int k = shards();
      for (int i = 1; i < k; ++i) {
        const auto next = std::int32_t((shard + i) % k);
        if (granter->holder_suspect(next)) continue;
        shard = next;
        home = home_of(shard);
        lazy_counter("shard.failovers", failovers_).add();
        rerouted = true;
        break;
      }
      if (!rerouted) {
        // Every shard looks dead from here. Falling through to the home
        // shard would eat the full deploy timeout per attempt; instead
        // back off (linearly, re-checking suspicion each time — a shard
        // may yet recover) and reject after the retry budget.
        int& attempts = unreachable_attempts_[request.app];
        if (attempts < config_.submit_retries) {
          ++attempts;
          lazy_counter("shard.submit_retries", submit_retries_).add();
          const auto backoff = kUnreachableBackoff * attempts;
          world_.simulator().call_after(
              backoff, [this, request, stream_start, stream_stop,
                        done = std::move(done)]() mutable {
                dispatch(request, stream_start, stream_stop,
                         std::move(done));
              });
          return;
        }
        unreachable_attempts_.erase(request.app);
        core::SubmitOutcome outcome;
        outcome.compose.admitted = false;
        outcome.compose.error = "all coordinator shards suspect";
        if (done) done(outcome);
        return;
      }
    }
  }
  unreachable_attempts_.erase(request.app);
  auto msg = std::make_shared<core::SubmitShardMsg>();
  msg->request = request;
  msg->stream_start = stream_start;
  msg->stream_stop = stream_stop;
  msg->done = std::move(done);
  const auto size = msg->wire_size();
  world_.network().send(request.source, home, size, std::move(msg));
}

void ShardControlPlane::resolve_pending(runtime::AppId app,
                                        core::SubmitOutcome outcome) {
  // Outcomes surface from shard callouts on arbitrary LPs; the journal
  // mutation and the user callback need exclusive access. First outcome
  // wins — the original and a re-submitted copy can both resolve, and
  // the caller's callback must fire exactly once.
  world_.simulator().exclusive(
      [this, app, outcome = std::move(outcome)]() {
        const auto it = pending_.find(app);
        if (it == pending_.end()) return;
        auto done = std::move(it->second.done);
        pending_.erase(it);
        if (done) done(outcome);
      });
}

void ShardControlPlane::retry_pending(runtime::AppId app) {
  const auto it = pending_.find(app);
  if (it == pending_.end()) return;  // resolved in time
  auto& pending = it->second;
  if (pending.attempts >= config_.submit_retries) {
    // Out of re-submissions: wait for an outcome of the copies already
    // in flight (the deploy timeout bounds how long that takes).
    return;
  }
  ++pending.attempts;
  lazy_counter("shard.resubmits", resubmits_).add();
  dispatch(pending.request, pending.stream_start, pending.stream_stop,
           [this, app](const core::SubmitOutcome& outcome) {
             resolve_pending(app, outcome);
           });
  world_.simulator().call_after(config_.submit_retry,
                                [this, app] { retry_pending(app); });
}

obs::Counter& ShardControlPlane::lazy_counter(const char* name,
                                              obs::Counter*& slot) {
  if (slot == nullptr) slot = &world_.metrics().counter(name, {});
  return *slot;
}

}  // namespace rasc::exp
