// Fixed-width series tables printed by the figure benchmarks, mirroring
// the paper's figure axes: one row per algorithm, one column per average
// rate. Optionally mirrored to CSV for re-plotting.
#pragma once

#include <string>
#include <vector>

namespace rasc::exp {

struct SeriesTable {
  std::string title;
  std::string row_header;     // e.g. "algorithm"
  std::string col_header;     // e.g. "avg rate (Kb/s)"
  std::vector<std::string> col_labels;
  std::vector<std::string> row_labels;
  /// values[row][col]
  std::vector<std::vector<double>> values;
  int precision = 3;
};

/// Renders the table to stdout.
void print_table(const SeriesTable& table);

/// Writes the table as CSV (first column = row label).
void write_csv(const SeriesTable& table, const std::string& path);

}  // namespace rasc::exp
