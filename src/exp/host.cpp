#include "exp/host.hpp"

#include "util/logging.hpp"

namespace rasc::exp {

Host::Host(sim::Simulator& simulator, sim::Network& network,
           overlay::PastryNode& pastry,
           const runtime::ServiceCatalog& catalog,
           monitor::NodeMonitor::Params monitor_params,
           runtime::NodeRuntime::Params runtime_params,
           obs::MetricRegistry* registry, obs::UnitTrace* trace,
           core::Coordinator::DeployPolicy deploy_policy) {
  const sim::NodeIndex node = pastry.addr();
  simulator_ = &simulator;
  network_ = &network;
  catalog_ = &catalog;
  registry_ = registry;
  node_ = node;
  monitor_ = std::make_unique<monitor::NodeMonitor>(
      simulator, network, node, monitor_params, registry);
  stats_ = std::make_unique<monitor::StatsAgent>(simulator, network, node,
                                                 *monitor_);
  runtime_ = std::make_unique<runtime::NodeRuntime>(
      simulator, network, node, *monitor_, catalog, runtime_params, registry,
      trace);
  coordinator_ = std::make_unique<core::Coordinator>(
      simulator, network, pastry, *stats_, catalog, registry, deploy_policy);
  recovery_composer_ = std::make_unique<core::MinCostComposer>();
  supervisor_ = std::make_unique<core::AppSupervisor>(
      simulator, network, *coordinator_, *recovery_composer_,
      core::AppSupervisor::Params(), registry);

  // Data units tail-dropped at this node's port queues are congestion
  // losses this node caused: they feed the drop-ratio the composers see.
  monitor::NodeMonitor* monitor = monitor_.get();
  network.set_drop_handler(
      node, [monitor](const sim::Packet& packet, bool outgoing) {
        (void)outgoing;
        if (dynamic_cast<const runtime::DataUnit*>(packet.payload.get())) {
          monitor->on_unit_dropped();
        }
      });
}

runtime::LeaseGranter& Host::enable_lease_granter(
    const runtime::LeaseGranter::Params& params) {
  if (granter_ == nullptr) {
    granter_ = std::make_unique<runtime::LeaseGranter>(
        *simulator_, *network_, node_, *monitor_, params, registry_);
    runtime_->set_lease_granter(granter_.get());
  }
  return *granter_;
}

core::RateAdapter& Host::enable_adapter(
    const core::RateAdapter::Params& params) {
  if (adapter_ == nullptr) {
    adapter_ = std::make_unique<core::RateAdapter>(
        *simulator_, *network_, *stats_, *catalog_, node_, params,
        registry_);
    supervisor_->set_adapter(adapter_.get());
  }
  return *adapter_;
}

void Host::handle_packet(const sim::Packet& packet) {
  if (stats_->handle_packet(packet)) return;
  if (runtime_->handle_packet(packet)) return;
  if (coordinator_->handle_packet(packet)) return;
  if (supervisor_->handle_packet(packet)) return;
  if (granter_ != nullptr && granter_->handle_packet(packet)) return;
  if (shard_ != nullptr && shard_->handle_packet(packet)) return;
  if (extra_ && extra_(packet)) return;
  RASC_LOG(kWarn) << "host " << packet.dst << ": unhandled packet kind "
                  << (packet.payload ? packet.payload->kind() : "null");
}

}  // namespace rasc::exp
