#include "exp/sweep.hpp"

#include <filesystem>
#include <sstream>
#include <utility>

#include "util/thread_pool.hpp"

namespace rasc::exp {

double SweepResult::mean(
    const std::string& algorithm, double rate,
    const std::function<double(const RunMetrics&)>& extract) const {
  const auto it = cells.find({algorithm, rate});
  if (it == cells.end() || it->second.empty()) return 0;
  double total = 0;
  for (const auto& m : it->second) total += extract(m);
  return total / double(it->second.size());
}

SweepResult run_sweep(const SweepConfig& config, util::ThreadPool& pool) {
  struct Cell {
    std::string algorithm;
    double rate;
    int rep;
  };
  std::vector<Cell> cells;
  for (const auto& algorithm : config.algorithms) {
    for (double rate : config.rates_kbps) {
      for (int rep = 0; rep < config.repetitions; ++rep) {
        cells.push_back(Cell{algorithm, rate, rep});
      }
    }
  }

  SweepResult result;
  // Pre-size the per-cell vectors so workers write disjoint slots.
  for (const auto& algorithm : config.algorithms) {
    for (double rate : config.rates_kbps) {
      result.cells[{algorithm, rate}].resize(
          std::size_t(config.repetitions));
    }
  }

  if (!config.metrics_dir.empty()) {
    std::filesystem::create_directories(config.metrics_dir);
  }

  pool.parallel_for(cells.size(), [&](std::size_t i) {
    const Cell& cell = cells[i];
    RunConfig run = config.base;
    run.algorithm = cell.algorithm;
    run.workload.avg_rate_kbps = cell.rate;
    // Same world per repetition across algorithms and rates.
    run.world.seed = config.base_seed + std::uint64_t(cell.rep) * 7919;
    if (!config.metrics_dir.empty()) {
      std::ostringstream name;
      name << config.metrics_dir << "/" << cell.algorithm << "_r"
           << cell.rate << "_rep" << cell.rep;
      run.metrics_csv = name.str() + ".csv";
      // Chaos cells also drop their SLO verdict and fault timeline next
      // to the snapshot, keyed by the same cell coordinates.
      if (run.slo.any()) run.slo_report = name.str() + ".slo.csv";
      if (!run.chaos_scenario.empty() && run.chaos_scenario != "none") {
        run.chaos_timeline_csv = name.str() + ".faults.csv";
      }
    }
    RunMetrics metrics = run_experiment(run);
    // The map was fully populated above, so this lookup never mutates the
    // tree and each worker writes a disjoint (cell, rep) slot — lock-free.
    const auto it = result.cells.find({cell.algorithm, cell.rate});
    it->second[std::size_t(cell.rep)] = std::move(metrics);
  });
  return result;
}

SweepResult run_sweep(const SweepConfig& config) {
  util::ThreadPool pool(config.threads);
  return run_sweep(config, pool);
}

SeriesTable make_table(
    const SweepConfig& config, const SweepResult& result,
    const std::string& title,
    const std::function<double(const RunMetrics&)>& extract, int precision) {
  SeriesTable table;
  table.title = title;
  table.row_header = "algorithm";
  table.col_header = "average rate (Kb/sec)";
  table.precision = precision;
  for (double rate : config.rates_kbps) {
    std::ostringstream os;
    os << rate;
    table.col_labels.push_back(os.str());
  }
  for (const auto& algorithm : config.algorithms) {
    table.row_labels.push_back(algorithm);
    std::vector<double> row;
    for (double rate : config.rates_kbps) {
      row.push_back(result.mean(algorithm, rate, extract));
    }
    table.values.push_back(std::move(row));
  }
  return table;
}

}  // namespace rasc::exp
