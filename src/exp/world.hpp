// World construction: topology, overlay, hosts, service catalog and DHT
// registration — everything that exists before the first request arrives.
//
// Paper defaults (§4.1): 32 nodes, 10 unique services, 5 services hosted
// per node (average replication degree 16).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "exp/host.hpp"
#include "obs/metric_registry.hpp"
#include "obs/unit_trace.hpp"
#include "overlay/builder.hpp"
#include "runtime/service.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "sim/topology.hpp"

namespace rasc::exp {

struct WorldConfig {
  std::size_t nodes = 32;
  int num_services = 10;
  int services_per_node = 5;
  sim::PlanetLabParams net;
  monitor::NodeMonitor::Params monitor_params;
  runtime::NodeRuntime::Params runtime_params;
  /// Deploy-phase reliability knobs shared by every host's coordinator
  /// (defaults: the legacy single-shot protocol).
  core::Coordinator::DeployPolicy deploy_policy;
  /// Range of per-unit CPU time across the generated services.
  sim::SimDuration service_cpu_min = sim::msec(1);
  sim::SimDuration service_cpu_max = sim::msec(4);
  /// When non-empty, these service specs are used instead of the
  /// generated svc0..svcN catalog (domain-specific examples: transcoders
  /// with rate ratios, aggregators, ...). num_services is ignored.
  std::vector<runtime::ServiceSpec> custom_services;
  /// Record per-data-unit lifecycle hops in the world's UnitTrace.
  /// Off by default: the trace is observational only (it never perturbs
  /// simulation state), but recording costs memory and time.
  bool enable_unit_trace = false;
  /// Worker threads for the discrete-event core. 1 (default) keeps the
  /// historical serial engine, byte-identical to every prior release.
  /// N > 1 shards the simulation into one logical process per node with
  /// conservative safe-window synchronization; results are deterministic
  /// per (threads, seed) and identical across all N > 1 for a fixed
  /// seed, but not byte-identical to the serial engine (per-node RNG
  /// striping). Unit tracing is unsupported in parallel mode and is
  /// forced off with a warning.
  int sim_threads = 1;
  std::uint64_t seed = 1;
};

/// A fully built simulated deployment. Construction drives the simulator
/// through overlay join and service registration; afterwards `now()` is
/// the earliest time requests can be submitted.
class World {
 public:
  explicit World(const WorldConfig& config);

  sim::Simulator& simulator() { return *simulator_; }
  sim::Network& network() { return *network_; }
  overlay::Overlay& overlay() { return *overlay_; }
  Host& host(std::size_t i) { return *hosts_[i]; }
  const Host& host(std::size_t i) const { return *hosts_[i]; }
  std::size_t size() const { return hosts_.size(); }

  const runtime::ServiceCatalog& catalog() const { return catalog_; }
  const std::vector<std::string>& service_names() const {
    return service_names_;
  }
  /// Which services node i offers (and registered in the DHT).
  const std::vector<std::string>& services_on(std::size_t i) const {
    return services_on_node_[i];
  }

  const WorldConfig& config() const { return config_; }

  /// Deployment-wide metric registry every subsystem emits through.
  obs::MetricRegistry& metrics() { return metrics_; }
  const obs::MetricRegistry& metrics() const { return metrics_; }
  /// Deployment-wide data-unit lifecycle trace (recording only when
  /// WorldConfig::enable_unit_trace).
  obs::UnitTrace& unit_trace() { return trace_; }
  const obs::UnitTrace& unit_trace() const { return trace_; }

 private:
  WorldConfig config_;
  // Declared before the network and hosts that hold pointers into them.
  obs::MetricRegistry metrics_;
  obs::UnitTrace trace_;
  std::unique_ptr<sim::Simulator> simulator_;
  std::unique_ptr<sim::Network> network_;
  std::unique_ptr<overlay::Overlay> overlay_;
  std::vector<std::unique_ptr<Host>> hosts_;
  runtime::ServiceCatalog catalog_;
  std::vector<std::string> service_names_;
  std::vector<std::vector<std::string>> services_on_node_;
};

}  // namespace rasc::exp
