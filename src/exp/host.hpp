// A Host bundles everything that lives on one simulated node: the resource
// monitor, the stats agent, the stream runtime and the composition
// coordinator. It is the per-node packet demultiplexer installed as the
// overlay's fallback handler (overlay traffic is consumed upstream).
#pragma once

#include <memory>

#include "core/coordinator.hpp"
#include "core/coordinator_shard.hpp"
#include "core/mincost_composer.hpp"
#include "core/rate_adapter.hpp"
#include "core/supervisor.hpp"
#include "monitor/node_monitor.hpp"
#include "monitor/stats_protocol.hpp"
#include "overlay/builder.hpp"
#include "runtime/lease_granter.hpp"
#include "runtime/node_runtime.hpp"

namespace rasc::exp {

class Host {
 public:
  /// `registry`/`trace` are the deployment-wide metric registry and
  /// data-unit lifecycle trace shared by every subsystem on this node;
  /// when null each subsystem owns a private registry (and no tracing).
  Host(sim::Simulator& simulator, sim::Network& network,
       overlay::PastryNode& pastry, const runtime::ServiceCatalog& catalog,
       monitor::NodeMonitor::Params monitor_params,
       runtime::NodeRuntime::Params runtime_params,
       obs::MetricRegistry* registry = nullptr,
       obs::UnitTrace* trace = nullptr,
       core::Coordinator::DeployPolicy deploy_policy = {});

  monitor::NodeMonitor& monitor() { return *monitor_; }
  monitor::StatsAgent& stats_agent() { return *stats_; }
  runtime::NodeRuntime& runtime() { return *runtime_; }
  core::Coordinator& coordinator() { return *coordinator_; }
  const runtime::NodeRuntime& runtime() const { return *runtime_; }
  /// Supervisor bound to this node's coordinator, recomposing starved
  /// applications with min-cost composition.
  core::AppSupervisor& supervisor() { return *supervisor_; }

  /// Constructs this node's capacity-lease granter on first call and
  /// wires it into the runtime (sharded control plane; see
  /// runtime/lease_granter.hpp). Lazy for the same reason as the
  /// adapter: unsharded runs must not create lease.* registry cells.
  runtime::LeaseGranter& enable_lease_granter(
      const runtime::LeaseGranter::Params& params);
  /// The granter, or nullptr while enable_lease_granter was never called.
  runtime::LeaseGranter* lease_granter() { return granter_.get(); }

  /// Installs the coordinator shard homed on this node (owned by the
  /// ShardControlPlane); its packets route through handle_packet.
  void set_shard(core::CoordinatorShard* shard) { shard_ = shard; }

  /// Extra per-node packet consumer at the end of the demux chain (the
  /// gossip agent; owned by its control plane). Return true = consumed.
  using ExtraHandler = std::function<bool(const sim::Packet&)>;
  void set_extra_handler(ExtraHandler handler) {
    extra_ = std::move(handler);
  }

  /// Constructs this node's rate adapter on first call (idempotent for
  /// identical params; later calls return the existing instance) and
  /// wires it into the supervisor as the first-line starvation response.
  /// Lazy on purpose: a host that never adapts must not create adapt.*
  /// registry cells, keeping adapt-disabled runs byte-identical.
  core::RateAdapter& enable_adapter(const core::RateAdapter::Params& params);
  /// The adapter, or nullptr while enable_adapter was never called.
  core::RateAdapter* adapter() { return adapter_.get(); }

  /// Non-overlay packet entry point (install as Overlay fallback).
  void handle_packet(const sim::Packet& packet);

 private:
  std::unique_ptr<monitor::NodeMonitor> monitor_;
  std::unique_ptr<monitor::StatsAgent> stats_;
  std::unique_ptr<runtime::NodeRuntime> runtime_;
  std::unique_ptr<core::Coordinator> coordinator_;
  std::unique_ptr<core::MinCostComposer> recovery_composer_;
  std::unique_ptr<core::AppSupervisor> supervisor_;
  // Lazy-construction context for the adapter (the ctor refs above do not
  // survive as members elsewhere).
  sim::Simulator* simulator_ = nullptr;
  sim::Network* network_ = nullptr;
  const runtime::ServiceCatalog* catalog_ = nullptr;
  obs::MetricRegistry* registry_ = nullptr;
  sim::NodeIndex node_ = sim::kInvalidNode;
  /// Declared after supervisor_ so pending adapter callbacks die first.
  std::unique_ptr<core::RateAdapter> adapter_;
  std::unique_ptr<runtime::LeaseGranter> granter_;
  core::CoordinatorShard* shard_ = nullptr;
  ExtraHandler extra_;
};

}  // namespace rasc::exp
