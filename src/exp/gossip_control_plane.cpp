#include "exp/gossip_control_plane.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/logging.hpp"

namespace rasc::exp {

namespace {

/// A gossip entry rendered as the stats snapshot the composer framework
/// expects: free bandwidth is the min of what the monitor measured free
/// and what the lease authority would still debit, folded back into
/// used_* against the advertised capacity.
monitor::NodeStats stats_from_summary(const gossip::LoadSummary& s,
                                      sim::SimTime now) {
  monitor::NodeStats stats;
  stats.node = s.origin;
  stats.capacity_in_kbps = s.capacity_in_kbps;
  stats.capacity_out_kbps = s.capacity_out_kbps;
  const double free_in = std::min(s.free_in_kbps, s.lease_headroom_in_kbps);
  const double free_out =
      std::min(s.free_out_kbps, s.lease_headroom_out_kbps);
  stats.used_in_kbps = std::max(0.0, s.capacity_in_kbps - free_in);
  stats.used_out_kbps = std::max(0.0, s.capacity_out_kbps - free_out);
  stats.cpu_used_fraction = std::max(0.0, 1.0 - s.cpu_free_fraction);
  stats.drop_ratio = s.drop_ratio;
  stats.drop_samples = s.drop_samples;
  stats.taken_at = now;
  return stats;
}

}  // namespace

struct GossipControlPlane::Pending {
  core::ServiceRequest request;
  sim::SimTime submitted_at = 0;
  sim::SimTime stream_start = 0;
  sim::SimTime stream_stop = 0;
  core::Coordinator::Callback done;

  std::size_t lookups_outstanding = 0;
  std::map<std::string, std::vector<sim::NodeIndex>> providers;
  std::vector<std::string> failed_services;
  int attempts_left = 0;
};

GossipControlPlane::GossipControlPlane(World& world, Config config,
                                       util::Xoshiro256 rng)
    : world_(world), config_(config) {
  const std::size_t nodes = world.size();
  const std::int64_t per_peer =
      config_.agent.budget_bytes / std::max(1, config_.agent.fanout);
  digest_capacity_ =
      std::max<std::int64_t>(0, (per_peer - gossip::GossipDigestMsg::kHeaderBytes) /
                                    gossip::LoadSummary::kWireBytes);

  // Every node's granter becomes the pool-debit authority. One shard:
  // no real grants are ever negotiated in this mode, the granter only
  // answers kPoolShard debits from deploys.
  runtime::LeaseGranter::Params granter_params;
  for (std::size_t n = 0; n < nodes; ++n) {
    world.host(n).enable_lease_granter(granter_params);
  }

  if (!config_.composer.latency_ms) {
    const sim::Topology& topo = world.network().topology();
    config_.composer.latency_ms = [&topo](sim::NodeIndex a,
                                          sim::NodeIndex b) {
      if (a == b) return 0.0;
      return double(topo.latency_us[std::size_t(a)][std::size_t(b)]) /
             1000.0;
    };
  }

  clients_.resize(nodes);
  for (std::size_t n = 0; n < nodes; ++n) {
    Client& client = clients_[n];
    gossip::Agent::Params agent_params = config_.agent;
    agent_params.seed = rng.split(0x676f7370u /* "gosp" */ ^ n).next();
    Host& host = world.host(n);
    runtime::LeaseGranter* granter = host.lease_granter();
    monitor::NodeMonitor* monitor = &host.monitor();
    auto summary_fn = [monitor, granter]() {
      gossip::LoadSummary s;
      const monitor::NodeStats stats = monitor->snapshot();
      s.capacity_in_kbps = stats.capacity_in_kbps;
      s.capacity_out_kbps = stats.capacity_out_kbps;
      s.free_in_kbps = stats.available_in_kbps();
      s.free_out_kbps = stats.available_out_kbps();
      granter->pool_remaining_kbps(s.lease_headroom_in_kbps,
                                   s.lease_headroom_out_kbps);
      s.cpu_free_fraction = stats.available_cpu_fraction();
      s.drop_ratio = stats.drop_ratio;
      s.drop_samples = stats.drop_samples;
      s.demand_hint_kbps =
          std::max(stats.used_out_kbps, stats.reserved_out_kbps);
      return s;
    };
    client.agent = std::make_unique<gossip::Agent>(
        world.simulator(), world.network(), sim::NodeIndex(n), nodes,
        agent_params, std::move(summary_fn), world.metrics());
    client.composer =
        std::make_unique<core::GossipComposer>(config_.composer);
    client.registry = std::make_unique<overlay::ServiceRegistry>(
        world.overlay().at(n));
    gossip::Agent* agent = client.agent.get();
    host.set_extra_handler([agent](const sim::Packet& packet) {
      return agent->handle_packet(packet);
    });
  }

  obs::Labels global;
  submitted_ = &world.metrics().counter("gossip.submitted", global);
  admitted_ = &world.metrics().counter("gossip.admitted", global);
  rejected_ = &world.metrics().counter("gossip.rejected", global);
  repairs_ = &world.metrics().counter("gossip.repairs", global);
}

GossipControlPlane::~GossipControlPlane() {
  for (std::size_t n = 0; n < clients_.size(); ++n) {
    world_.host(n).set_extra_handler(nullptr);
  }
}

void GossipControlPlane::start(sim::SimTime at) {
  for (auto& client : clients_) client.agent->start(at);
}

sim::SimDuration GossipControlPlane::warmup() const {
  int rounds = config_.warmup_rounds;
  if (rounds <= 0) {
    // Full view coverage: each digest carries `digest_capacity_` entries
    // and consecutive rounds cover consecutive view chunks, so one sweep
    // is ceil(N / capacity) rounds; epidemic spread over fanout peers
    // multiplies that by a small dissemination depth. Plus slack for the
    // first summaries to exist at all.
    const double per_sweep =
        std::ceil(double(world_.size()) /
                  double(std::max<std::int64_t>(1, digest_capacity_)));
    rounds = int(3.0 * per_sweep) + 10;
  }
  return config_.agent.interval * rounds + sim::sec(1);
}

void GossipControlPlane::feed_adapter(std::size_t node,
                                      core::RateAdapter& adapter) {
  gossip::Agent* agent = clients_[node].agent.get();
  sim::Simulator* simulator = &world_.simulator();
  adapter.set_stats_provider(
      [agent, simulator](
          const std::vector<sim::NodeIndex>& targets,
          std::function<void(std::vector<monitor::NodeStats>)> done) {
        const auto& view = agent->view();
        const sim::SimTime now = simulator->now();
        std::vector<monitor::NodeStats> stats;
        stats.reserve(targets.size());
        for (const sim::NodeIndex target : targets) {
          const auto it = view.find(target);
          if (it == view.end()) continue;
          stats.push_back(stats_from_summary(it->second.summary, now));
        }
        // Synchronous on purpose: the whole point is zero control
        // round-trips; the adapter tolerates re-entrant delivery.
        done(std::move(stats));
      });
}

void GossipControlPlane::submit(const core::ServiceRequest& request,
                                sim::SimTime stream_start,
                                sim::SimTime stream_stop,
                                core::Coordinator::Callback done) {
  submitted_->add();
  auto pending = std::make_shared<Pending>();
  pending->request = request;
  pending->submitted_at = world_.simulator().now();
  pending->stream_start = stream_start;
  pending->stream_stop = stream_stop;
  pending->done = std::move(done);
  pending->attempts_left = config_.repair_attempts;

  // Provider discovery through the DHT exactly as the centralized
  // coordinator does it — what gossip replaces is the stats fan-out, not
  // service discovery.
  const auto services = request.distinct_services();
  pending->lookups_outstanding = services.size();
  Client& client = clients_[std::size_t(request.source)];
  for (const auto& service : services) {
    client.registry->lookup(
        service, [this, pending, service](
                     bool found, std::vector<sim::NodeIndex> providers) {
          if (!found || providers.empty()) {
            pending->failed_services.push_back(service);
          } else {
            pending->providers[service] = std::move(providers);
          }
          if (--pending->lookups_outstanding > 0) return;
          if (!pending->failed_services.empty()) {
            core::SubmitOutcome outcome;
            outcome.compose.error =
                "discovery failed for service " +
                pending->failed_services.front();
            finish(pending, outcome);
            return;
          }
          compose_and_deploy(pending);
        });
  }
}

void GossipControlPlane::compose_and_deploy(
    const std::shared_ptr<Pending>& pending) {
  Client& client = clients_[std::size_t(pending->request.source)];
  const auto& view = client.agent->view();
  const sim::SimTime now = world_.simulator().now();

  core::ComposeInput input;
  input.request = pending->request;
  input.catalog = &world_.catalog();
  std::map<sim::NodeIndex, double> hints;
  for (const auto& [service, providers] : pending->providers) {
    auto& stats = input.providers[service];
    for (const sim::NodeIndex provider : providers) {
      // Providers the view holds no (fresh) summary for are invisible to
      // this composer: bounded staleness trades a smaller candidate set
      // for zero stats round-trips.
      const auto it = view.find(provider);
      if (it == view.end()) continue;
      stats.push_back(stats_from_summary(it->second.summary, now));
      hints[provider] = it->second.summary.demand_hint_kbps;
    }
    if (stats.empty()) {
      core::SubmitOutcome outcome;
      outcome.compose.error =
          "no provider of " + service + " in gossip view";
      outcome.providers = pending->providers;
      finish(pending, outcome);
      return;
    }
  }
  const auto source_it = view.find(pending->request.source);
  const auto dest_it = view.find(pending->request.destination);
  if (source_it == view.end() || dest_it == view.end()) {
    core::SubmitOutcome outcome;
    outcome.compose.error = source_it == view.end()
                                ? "source not in gossip view"
                                : "destination not in gossip view";
    outcome.providers = pending->providers;
    finish(pending, outcome);
    return;
  }
  input.source_stats = stats_from_summary(source_it->second.summary, now);
  input.destination_stats = stats_from_summary(dest_it->second.summary, now);

  client.composer->set_load_hints(std::move(hints));
  core::ComposeResult result = client.composer->compose(input);
  if (!result.admitted) {
    core::SubmitOutcome outcome;
    outcome.compose = std::move(result);
    outcome.providers = pending->providers;
    finish(pending, outcome);
    return;
  }

  core::Coordinator::PreparedSubmit prepared;
  prepared.request = pending->request;
  prepared.compose = std::move(result);
  prepared.providers = pending->providers;
  prepared.stream_start = pending->stream_start;
  prepared.stream_stop = pending->stream_stop;
  prepared.submitted_at = pending->submitted_at;
  prepared.shard = runtime::LeaseGranter::kPoolShard;
  prepared.lease_epoch_of = [](sim::NodeIndex) { return std::uint64_t(1); };
  prepared.done = [this, pending](const core::SubmitOutcome& outcome) {
    if (!outcome.compose.admitted && !outcome.nacked.empty() &&
        pending->attempts_left > 0) {
      --pending->attempts_left;
      repairs_->add();
      // The NACKing nodes' advertised headroom was wrong (a race or a
      // stale summary): drop them from the view until fresh news and
      // recompose around them.
      auto& agent = *clients_[std::size_t(pending->request.source)].agent;
      for (const sim::NodeIndex node : outcome.nacked) {
        agent.mark_suspect(node);
      }
      compose_and_deploy(pending);
      return;
    }
    finish(pending, outcome);
  };
  world_.host(std::size_t(pending->request.source))
      .coordinator()
      .submit_prepared(std::move(prepared));
}

void GossipControlPlane::finish(const std::shared_ptr<Pending>& pending,
                                const core::SubmitOutcome& outcome) {
  (outcome.compose.admitted ? admitted_ : rejected_)->add();
  if (!outcome.compose.admitted) {
    RASC_LOG(kDebug) << "gossip plane: app " << pending->request.app
                     << " rejected: " << outcome.compose.error;
  }
  if (pending->done) pending->done(outcome);
}

}  // namespace rasc::exp
