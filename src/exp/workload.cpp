#include "exp/workload.hpp"

#include <algorithm>
#include <cassert>

namespace rasc::exp {

std::vector<core::ServiceRequest> generate_workload(
    const WorkloadConfig& config, const std::vector<std::string>& services,
    std::size_t nodes, util::Xoshiro256& rng) {
  assert(!services.empty());
  assert(nodes >= 2);
  std::vector<core::ServiceRequest> out;
  out.reserve(std::size_t(config.num_requests));

  for (int r = 0; r < config.num_requests; ++r) {
    core::ServiceRequest req;
    req.app = r + 1;
    req.unit_bytes = config.unit_bytes;
    req.source = sim::NodeIndex(rng.uniform_int(0, std::int64_t(nodes) - 1));
    do {
      req.destination =
          sim::NodeIndex(rng.uniform_int(0, std::int64_t(nodes) - 1));
    } while (req.destination == req.source);

    const int max_services =
        std::min(config.max_services, int(services.size()));
    const int count =
        int(rng.uniform_int(config.min_services, max_services));
    std::vector<std::string> picked = services;
    rng.shuffle(picked);
    picked.resize(std::size_t(count));

    const double rate = config.avg_rate_kbps *
                        rng.uniform_double(1.0 - config.rate_jitter,
                                           1.0 + config.rate_jitter);

    const bool split = count >= 2 && rng.bernoulli(config.two_substream_prob);
    if (split) {
      const int first = int(rng.uniform_int(1, count - 1));
      core::Substream a;
      a.services.assign(picked.begin(), picked.begin() + first);
      a.rate_kbps = rate;
      core::Substream b;
      b.services.assign(picked.begin() + first, picked.end());
      b.rate_kbps = rate;
      req.substreams = {std::move(a), std::move(b)};
    } else {
      core::Substream a;
      a.services = std::move(picked);
      a.rate_kbps = rate;
      req.substreams = {std::move(a)};
    }
    out.push_back(std::move(req));
  }
  return out;
}

}  // namespace rasc::exp
