#include "exp/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/csv.hpp"

namespace rasc::exp {

namespace {

std::string format_value(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

}  // namespace

void print_table(const SeriesTable& table) {
  std::printf("\n== %s ==\n", table.title.c_str());
  // Column widths.
  std::size_t label_width = table.row_header.size();
  for (const auto& r : table.row_labels) {
    label_width = std::max(label_width, r.size());
  }
  std::vector<std::size_t> widths;
  for (std::size_t c = 0; c < table.col_labels.size(); ++c) {
    std::size_t w = table.col_labels[c].size();
    for (std::size_t r = 0; r < table.row_labels.size(); ++r) {
      w = std::max(w,
                   format_value(table.values[r][c], table.precision).size());
    }
    widths.push_back(w);
  }
  std::printf("%-*s", int(label_width + 2), table.row_header.c_str());
  for (std::size_t c = 0; c < table.col_labels.size(); ++c) {
    std::printf("  %*s", int(widths[c]), table.col_labels[c].c_str());
  }
  std::printf("   <- %s\n", table.col_header.c_str());
  for (std::size_t r = 0; r < table.row_labels.size(); ++r) {
    std::printf("%-*s", int(label_width + 2), table.row_labels[r].c_str());
    for (std::size_t c = 0; c < table.col_labels.size(); ++c) {
      std::printf("  %*s", int(widths[c]),
                  format_value(table.values[r][c], table.precision).c_str());
    }
    std::printf("\n");
  }
}

void write_csv(const SeriesTable& table, const std::string& path) {
  util::CsvWriter csv(path);
  std::vector<std::string> header{table.row_header};
  header.insert(header.end(), table.col_labels.begin(),
                table.col_labels.end());
  csv.row(header);
  for (std::size_t r = 0; r < table.row_labels.size(); ++r) {
    csv.numeric_row(table.row_labels[r], table.values[r]);
  }
}

}  // namespace rasc::exp
