#include "sim/topology.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace rasc::sim {

Topology make_uniform_topology(std::size_t n, double bw_kbps,
                               SimDuration latency) {
  Topology t;
  t.nodes.assign(n, NodeCapacity{bw_kbps, bw_kbps});
  t.latency_us.assign(n, std::vector<SimDuration>(n, latency));
  for (std::size_t i = 0; i < n; ++i) t.latency_us[i][i] = 0;
  return t;
}

Topology make_planetlab_like(std::size_t n, util::Xoshiro256& rng,
                             const PlanetLabParams& params) {
  assert(params.bw_min_kbps > 0 && params.bw_max_kbps >= params.bw_min_kbps);
  Topology t;
  t.nodes.resize(n);
  for (auto& node : t.nodes) {
    // Download and upload capacities drawn independently: PlanetLab site
    // caps are asymmetric.
    node.bw_in_kbps = rng.uniform_double(params.bw_min_kbps,
                                         params.bw_max_kbps);
    node.bw_out_kbps = rng.uniform_double(params.bw_min_kbps,
                                          params.bw_max_kbps);
  }
  t.latency_jitter = params.latency_jitter;
  t.latency_us.assign(n, std::vector<SimDuration>(n, 0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      // Clipped Pareto: xm = latency_min, clipped at latency_max.
      const double raw = rng.pareto(double(params.latency_min),
                                    params.latency_pareto_shape);
      const auto lat = SimDuration(
          std::clamp(raw, double(params.latency_min),
                     double(params.latency_max)));
      t.latency_us[i][j] = lat;
      t.latency_us[j][i] = lat;
    }
  }
  return t;
}

std::vector<std::size_t> nodes_by_ascending_bandwidth(const Topology& t) {
  std::vector<std::size_t> order(t.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&t](std::size_t a, std::size_t b) {
                     const double ba = std::min(t.nodes[a].bw_in_kbps,
                                                t.nodes[a].bw_out_kbps);
                     const double bb = std::min(t.nodes[b].bw_in_kbps,
                                                t.nodes[b].bw_out_kbps);
                     return ba < bb;
                   });
  return order;
}

SimDuration conservative_lookahead(const Topology& t) {
  SimDuration min_latency = std::numeric_limits<SimDuration>::max();
  const std::size_t n = t.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      min_latency = std::min(min_latency, t.latency_us[i][j]);
    }
  }
  if (n < 2 || min_latency <= 0) return 1;
  // Truncation matches the jittered-latency computation in Network::send
  // (double -> SimDuration truncates toward zero), and the extra >= 1us of
  // output serialization absorbs any floating-point shortfall.
  const double scaled = double(min_latency) * (1.0 - t.latency_jitter);
  return std::max<SimDuration>(1, SimDuration(scaled));
}

}  // namespace rasc::sim
