#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace rasc::sim {

EventId EventQueue::schedule(SimTime t, std::function<void()> fn) {
  const EventId id = next_id_++;
  heap_.push(Entry{t, id});
  handlers_.emplace(id, std::move(fn));
  ++live_count_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  const auto it = handlers_.find(id);
  if (it == handlers_.end()) return false;
  handlers_.erase(it);
  --live_count_;
  return true;
}

void EventQueue::drop_cancelled_head() const {
  while (!heap_.empty() && !handlers_.count(heap_.top().id)) {
    heap_.pop();
  }
}

SimTime EventQueue::next_time() const {
  drop_cancelled_head();
  assert(!heap_.empty());
  return heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
  drop_cancelled_head();
  assert(!heap_.empty());
  const Entry e = heap_.top();
  heap_.pop();
  auto it = handlers_.find(e.id);
  Fired fired{e.time, e.id, std::move(it->second)};
  handlers_.erase(it);
  --live_count_;
  return fired;
}

}  // namespace rasc::sim
