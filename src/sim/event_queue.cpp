#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace rasc::sim {

namespace {

/// Ids are offset by 1 so that 0 stays free for callers' "no event"
/// sentinel (several subsystems initialize EventId members to 0).
EventId make_id(std::uint32_t gen, std::uint32_t slot) {
  return ((EventId(gen) << 32) | slot) + 1;
}

}  // namespace

bool EventQueue::entry_before(const Entry& a, const Entry& b) {
  if (a.time != b.time) return a.time < b.time;
  return a.seq < b.seq;  // FIFO within a timestamp
}

// The pending set is a 4-ary min-heap: half the depth of a binary heap and
// four children per cache line's worth of entries, which is what matters
// when thousands of events are pending.

void EventQueue::heap_push(Entry entry) const {
  heap_.push_back(entry);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!entry_before(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void EventQueue::heap_pop() const {
  const Entry x = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  std::size_t i = 0;
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    const std::size_t stop = std::min(first + 4, n);
    std::size_t best = first;
    for (std::size_t c = first + 1; c < stop; ++c) {
      if (entry_before(heap_[c], heap_[best])) best = c;
    }
    if (!entry_before(heap_[best], x)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = x;
}

EventId EventQueue::schedule(SimTime t, std::function<void()> fn) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = std::uint32_t(slots_.size());
    slots_.emplace_back();
    free_slots_.reserve(slots_.capacity());
  }
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.live = true;

  heap_push(Entry{t, next_seq_++, slot, s.gen});
  ++live_count_;
  return make_id(s.gen, slot);
}

bool EventQueue::cancel(EventId id) {
  if (id == 0) return false;
  const EventId raw = id - 1;
  const auto slot = std::uint32_t(raw & 0xffffffffu);
  const auto gen = std::uint32_t(raw >> 32);
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  if (!s.live || s.gen != gen) return false;
  s.fn = nullptr;  // release captured state eagerly
  s.live = false;
  ++s.gen;
  free_slots_.push_back(slot);
  --live_count_;
  return true;
  // The heap entry stays; drop_cancelled_head skips it by gen mismatch.
}

void EventQueue::drop_cancelled_head() const {
  while (!heap_.empty() && !entry_live(heap_.front())) {
    heap_pop();
  }
}

SimTime EventQueue::next_time() const {
  drop_cancelled_head();
  assert(!heap_.empty());
  return heap_.front().time;
}

EventQueue::Fired EventQueue::pop() {
  drop_cancelled_head();
  assert(!heap_.empty());
  const Entry e = heap_.front();
  heap_pop();

  Slot& s = slots_[e.slot];
  Fired fired{e.time, make_id(e.gen, e.slot), std::move(s.fn)};
  s.fn = nullptr;
  s.live = false;
  ++s.gen;
  free_slots_.push_back(e.slot);
  --live_count_;
  return fired;
}

}  // namespace rasc::sim
