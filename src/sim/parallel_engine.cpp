#include "sim/parallel_engine.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

#include "util/logging.hpp"

namespace rasc::sim {

namespace {

constexpr SimTime kNoEvent = std::numeric_limits<SimTime>::max();

/// LP index the current thread is executing; -1 outside a window.
thread_local int tl_context_lp = -1;

/// Window epoch the current thread is executing in; 0 outside run_until
/// windows (step()'s serial LP execution posts with stamp 0, which every
/// later window treats as already-frozen).
thread_local std::uint64_t tl_window_epoch = 0;

/// merge_inbox() bound that drains every post regardless of stamp
/// (serial paths, workers parked).
constexpr std::uint64_t kDrainAll = std::numeric_limits<std::uint64_t>::max();

/// RAII context marker so exceptions cannot leave a stale LP context.
struct ContextScope {
  explicit ContextScope(int lp) { tl_context_lp = lp; }
  ~ContextScope() { tl_context_lp = -1; }
};

}  // namespace

// --- TaggedQueue -----------------------------------------------------------
// Same heap/slot mechanics as sim::EventQueue (see event_queue.cpp); kept
// separate so the serial queue — and with it every historical run — stays
// untouched by the engine's id-tagging scheme.

void TaggedQueue::heap_push(Entry entry) const {
  heap_.push_back(entry);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!entry_before(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void TaggedQueue::heap_pop() const {
  const Entry x = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  std::size_t i = 0;
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    const std::size_t stop = std::min(first + 4, n);
    std::size_t best = first;
    for (std::size_t c = first + 1; c < stop; ++c) {
      if (entry_before(heap_[c], heap_[best])) best = c;
    }
    if (!entry_before(heap_[best], x)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = x;
}

EventId TaggedQueue::schedule(SimTime t, std::function<void()> fn) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = std::uint32_t(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.live = true;
  heap_push(Entry{t, next_seq_++, slot, s.gen});
  ++live_count_;
  return make_id(s.gen, slot);
}

bool TaggedQueue::cancel(EventId id) {
  if (id == 0) return false;
  const auto slot = std::uint32_t(id & 0xffffffffu);
  const auto gen = std::uint32_t(id >> 32) & kGenMask;
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  if (!s.live || (s.gen & kGenMask) != gen) return false;
  s.fn = nullptr;
  s.live = false;
  s.gen = (s.gen + 1) & kGenMask;
  free_slots_.push_back(slot);
  --live_count_;
  return true;
}

void TaggedQueue::drop_cancelled_head() const {
  while (!heap_.empty() && !entry_live(heap_.front())) {
    heap_pop();
  }
}

SimTime TaggedQueue::next_time() const {
  drop_cancelled_head();
  assert(!heap_.empty());
  return heap_.front().time;
}

TaggedQueue::Fired TaggedQueue::pop() {
  drop_cancelled_head();
  assert(!heap_.empty());
  const Entry e = heap_.front();
  heap_pop();
  Slot& s = slots_[e.slot];
  Fired fired{e.time, std::move(s.fn)};
  s.fn = nullptr;
  s.live = false;
  s.gen = (s.gen + 1) & kGenMask;
  free_slots_.push_back(e.slot);
  --live_count_;
  return fired;
}

// --- ParallelEngine --------------------------------------------------------

ParallelEngine::ParallelEngine(const Config& config) : cfg_(config) {
  if (cfg_.num_lps == 0 || cfg_.num_lps > kMaxLps) {
    throw std::invalid_argument(
        "ParallelEngine: num_lps must be in [1, " +
        std::to_string(kMaxLps) + "], got " + std::to_string(cfg_.num_lps));
  }
  if (cfg_.lookahead < 1) cfg_.lookahead = 1;
  const int threads =
      std::max(1, std::min<int>(cfg_.threads, int(cfg_.num_lps)));
  cfg_.threads = threads;

  lps_.reserve(cfg_.num_lps);
  for (std::size_t lp = 0; lp < cfg_.num_lps; ++lp) {
    // Independent per-LP stream: splitmix64 over (seed, lp). Derived
    // without drawing from the world's root RNG so enabling the engine
    // does not shift any setup-time stream (the parallel world is the
    // same world the serial path builds).
    util::SplitMix64 mix(cfg_.seed ^ (0x4c50'9E37'79B9'7F4Bull +
                                      0x9E3779B97F4A7C15ull * (lp + 1)));
    lps_.push_back(std::make_unique<LpState>(lp + 2, mix.next()));
  }

  workers_.reserve(std::size_t(threads));
  for (int w = 0; w < threads; ++w) {
    workers_.emplace_back([this, w] { worker_main(w); });
  }
}

ParallelEngine::~ParallelEngine() {
  {
    std::lock_guard<std::mutex> lk(run_mu_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : workers_) t.join();
}

int ParallelEngine::context_lp() { return tl_context_lp; }

SimTime ParallelEngine::now() const {
  const int ctx = tl_context_lp;
  return ctx >= 0 ? lps_[std::size_t(ctx)]->now : global_now_;
}

util::Xoshiro256& ParallelEngine::rng(util::Xoshiro256& root) {
  const int ctx = tl_context_lp;
  return ctx >= 0 ? lps_[std::size_t(ctx)]->rng : root;
}

EventId ParallelEngine::schedule(SimTime t, std::function<void()> fn) {
  const int ctx = tl_context_lp;
  if (ctx >= 0) {
    LpState& lp = *lps_[std::size_t(ctx)];
    return lp.queue.schedule(std::max(t, lp.now), std::move(fn));
  }
  std::lock_guard<std::mutex> lk(global_mu_);
  return global_queue_.schedule(std::max(t, global_now_), std::move(fn));
}

EventId ParallelEngine::schedule_on(std::size_t lp, SimTime t,
                                    std::function<void()> fn) {
  assert(lp < lps_.size());
  LpState& target = *lps_[lp];
  const int ctx = tl_context_lp;
  if (ctx == int(lp)) {
    return target.queue.schedule(std::max(t, target.now), std::move(fn));
  }
  if (ctx < 0) {
    // Coordinating thread: workers are parked, direct push is safe. The
    // target may have locally advanced past a barrier-deferred caller's
    // clock; never schedule into its past.
    const SimTime at = std::max(t, target.now);
    coord_sched_min_ = std::min(coord_sched_min_, at);
    return target.queue.schedule(at, std::move(fn));
  }
  // Cross-LP: buffer in the destination inbox, stamped for deterministic
  // drain order. Not cancellable (id 0) — the packet-delivery paths that
  // take this route never cancel.
  LpState& src = *lps_[std::size_t(ctx)];
  Post post{std::max(t, src.now), std::uint32_t(ctx) + 1, src.post_seq++,
            tl_window_epoch, std::move(fn)};
  {
    std::lock_guard<std::mutex> lk(target.inbox_mu);
    target.inbox_min = std::min(target.inbox_min, post.time);
    target.inbox.push_back(std::move(post));
  }
  target.inbox_nonempty.store(true, std::memory_order_release);
  return 0;
}

bool ParallelEngine::cancel(EventId id) {
  if (id == 0) return false;
  const auto tag = TaggedQueue::tag_of(id);
  const int ctx = tl_context_lp;
  if (tag == 1) {
    std::lock_guard<std::mutex> lk(global_mu_);
    return global_queue_.cancel(id);
  }
  if (tag < 2 || tag - 2 >= lps_.size()) return false;
  const auto lp = std::size_t(tag - 2);
  if (ctx >= 0 && ctx != int(lp)) {
    // No layer cancels another node's events (audited); refusing keeps the
    // per-LP queues single-writer inside a window.
    RASC_LOG(kWarn) << "ParallelEngine: cross-LP cancel from LP " << ctx
                    << " for LP " << lp << " refused";
    return false;
  }
  return lps_[lp]->queue.cancel(id);
}

void ParallelEngine::exclusive(std::function<void()> fn) {
  const int ctx = tl_context_lp;
  if (ctx < 0) {
    fn();
    return;
  }
  LpState& src = *lps_[std::size_t(ctx)];
  Post post{src.now, std::uint32_t(ctx) + 1, src.post_seq++,
            tl_window_epoch, std::move(fn)};
  {
    std::lock_guard<std::mutex> lk(excl_mu_);
    excl_posts_.push_back(std::move(post));
  }
  excl_nonempty_.store(true, std::memory_order_release);
}

SimTime ParallelEngine::min_lp_time() const {
  // Called at barriers only (workers parked): the inbox_min writes of the
  // just-finished windows happened-before this read through the run_mu_
  // completion handshake, so the lock-free read is ordered and exact.
  SimTime t = kNoEvent;
  for (const auto& lp : lps_) {
    if (!lp->queue.empty()) t = std::min(t, lp->queue.next_time());
    if (lp->inbox_nonempty.load(std::memory_order_acquire)) {
      t = std::min(t, lp->inbox_min);
    }
  }
  return t;
}

void ParallelEngine::merge_inbox(LpState& lp, std::uint64_t window_epoch) {
  if (!lp.inbox_nonempty.load(std::memory_order_acquire)) return;
  auto& ready = lp.merge_scratch;
  ready.clear();
  {
    std::lock_guard<std::mutex> lk(lp.inbox_mu);
    // Extract the frozen set (stamps from completed windows); posts of the
    // window currently opening — concurrent workers may already be
    // posting — stay buffered and keep inbox_min covering them.
    std::size_t kept = 0;
    for (auto& p : lp.inbox) {
      if (p.epoch < window_epoch) {
        ready.push_back(std::move(p));
      } else {
        lp.inbox[kept++] = std::move(p);
      }
    }
    lp.inbox.resize(kept);
    SimTime remaining_min = kNever;
    for (const auto& p : lp.inbox) {
      remaining_min = std::min(remaining_min, p.time);
    }
    lp.inbox_min = remaining_min;
    lp.inbox_nonempty.store(kept != 0, std::memory_order_relaxed);
  }
  if (ready.empty()) return;
  std::sort(ready.begin(), ready.end(),
            [](const Post& a, const Post& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.src != b.src) return a.src < b.src;
              return a.seq < b.seq;
            });
  for (auto& p : ready) lp.queue.schedule(p.time, std::move(p.fn));
  ready.clear();
}

void ParallelEngine::drain_exclusive() {
  assert(tl_context_lp < 0);
  if (excl_nonempty_.load(std::memory_order_acquire)) {
    std::vector<Post> posts;
    {
      std::lock_guard<std::mutex> lk(excl_mu_);
      posts.swap(excl_posts_);
      excl_nonempty_.store(false, std::memory_order_relaxed);
    }
    std::sort(posts.begin(), posts.end(),
              [](const Post& a, const Post& b) {
                if (a.time != b.time) return a.time < b.time;
                if (a.src != b.src) return a.src < b.src;
                return a.seq < b.seq;
              });
    for (auto& p : posts) {
      // Deferred work keeps its caller's timestamp; any message it sends
      // still arrives beyond the posting window's horizon (the lookahead
      // bound holds from the original time). Exclusive fns run with
      // ctx < 0, so they cannot create further posts — one pass drains.
      global_now_ = p.time;
      p.fn();
    }
  }
}

void ParallelEngine::run_one_global() {
  std::unique_lock<std::mutex> lk(global_mu_);
  auto fired = global_queue_.pop();
  lk.unlock();
  global_now_ = fired.time;
  ++global_processed_;
  fired.fn();
}

void ParallelEngine::run_window(SimTime horizon) {
  {
    std::lock_guard<std::mutex> lk(run_mu_);
    horizon_ = horizon;
    running_ = cfg_.threads;
    ++epoch_;
  }
  cv_start_.notify_all();
  std::unique_lock<std::mutex> lk(run_mu_);
  cv_done_.wait(lk, [&] { return running_ == 0; });
}

void ParallelEngine::run_lp_window(std::size_t lp_index, SimTime horizon,
                                   std::uint64_t window_epoch) {
  LpState& lp = *lps_[lp_index];
  // Merge the posts of completed windows before looking at the queue
  // head: one of them may be this window's earliest event. The stamp test
  // selects exactly the set that existed at the last barrier — whatever
  // same-epoch posts race in from concurrently running workers are left
  // buffered — so the queue's sequence numbering is independent of the
  // thread partition.
  merge_inbox(lp, window_epoch);
  if (lp.queue.empty() || lp.queue.next_time() >= horizon) return;
  ContextScope scope{int(lp_index)};
  do {
    auto fired = lp.queue.pop();
    lp.now = fired.time;
    ++lp.processed;
    fired.fn();
  } while (!lp.queue.empty() && lp.queue.next_time() < horizon);
}

void ParallelEngine::worker_main(int worker) {
  std::uint64_t seen_epoch = 0;
  const std::size_t first = first_lp_of(worker);
  const std::size_t last = first_lp_of(worker + 1);
  for (;;) {
    SimTime horizon;
    {
      std::unique_lock<std::mutex> lk(run_mu_);
      cv_start_.wait(lk,
                     [&] { return shutdown_ || epoch_ != seen_epoch; });
      if (shutdown_) return;
      seen_epoch = epoch_;
      horizon = horizon_;
    }
    tl_window_epoch = seen_epoch;
    for (std::size_t lp = first; lp < last; ++lp) {
      run_lp_window(lp, horizon, seen_epoch);
    }
    tl_window_epoch = 0;
    {
      std::lock_guard<std::mutex> lk(run_mu_);
      if (--running_ == 0) cv_done_.notify_one();
    }
  }
}

void ParallelEngine::run_until(SimTime end) {
  assert(tl_context_lp < 0);
  for (;;) {
    drain_exclusive();
    const SimTime t_lp = min_lp_time();
    const SimTime t_g = global_queue_.empty() ? kNoEvent
                                              : global_queue_.next_time();
    const SimTime t_min = std::min(t_lp, t_g);
    if (t_min == kNoEvent || t_min > end) break;
    if (t_g <= t_lp) {
      // Global-first tie rule: matches step()'s serial order, so setup
      // (driven by step) and the windowed run agree on interleaving.
      // A whole *stretch* of global events runs back to back inside one
      // exclusive gap: the true min LP event time can only drop below
      // t_lp through the coordinating thread's own direct pushes (the
      // workers are parked, inboxes are frozen), so tracking the min
      // pushed time gives an exact conservative floor and every global
      // event up to that floor keeps the one-at-a-time order while
      // paying the park/unpark cycle and the per-LP min scan once
      // instead of once per event.
      SimTime lp_floor = t_lp;
      for (;;) {
        coord_sched_min_ = kNever;
        run_one_global();
        lp_floor = std::min(lp_floor, coord_sched_min_);
        if (global_queue_.empty()) break;
        const SimTime t_next = global_queue_.next_time();
        if (t_next > lp_floor || t_next > end) break;
      }
      continue;
    }
    run_window(std::min({t_lp + cfg_.lookahead, t_g, end + 1}));
  }
  global_now_ = std::max(global_now_, end);
  for (auto& lp : lps_) lp->now = std::max(lp->now, end);
}

bool ParallelEngine::step() {
  assert(tl_context_lp < 0);
  drain_exclusive();
  // Serial path: no window will merge the buffered posts, do it here —
  // all of them, whatever their stamp (the workers are parked, so every
  // post belongs to a completed window or to a previous step()).
  for (auto& lp : lps_) merge_inbox(*lp, kDrainAll);
  const SimTime t_g =
      global_queue_.empty() ? kNoEvent : global_queue_.next_time();
  SimTime t_best = kNoEvent;
  int best_lp = -1;
  for (std::size_t i = 0; i < lps_.size(); ++i) {
    auto& q = lps_[i]->queue;
    if (!q.empty() && q.next_time() < t_best) {
      t_best = q.next_time();
      best_lp = int(i);
    }
  }
  if (t_g == kNoEvent && best_lp < 0) return false;
  if (t_g <= t_best) {
    run_one_global();
    return true;
  }
  LpState& lp = *lps_[std::size_t(best_lp)];
  ContextScope scope(best_lp);
  auto fired = lp.queue.pop();
  lp.now = fired.time;
  ++lp.processed;
  fired.fn();
  return true;
}

std::size_t ParallelEngine::run_all(std::size_t max_events) {
  // Serial drain (setup/test path; timed runs use run_until).
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

std::size_t ParallelEngine::pending_events() const {
  // Counts inboxed posts too: a post is a pending event that no queue
  // holds yet. Called between runs (workers parked), so the buffers are
  // stable.
  std::size_t n = global_queue_.size();
  for (const auto& lp : lps_) {
    n += lp->queue.size() + lp->inbox.size();
  }
  return n;
}

std::size_t ParallelEngine::processed_events() const {
  std::size_t n = global_processed_;
  for (const auto& lp : lps_) n += lp->processed;
  return n;
}

}  // namespace rasc::sim
