#include "sim/parallel_engine.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

#include "util/logging.hpp"

namespace rasc::sim {

namespace {

constexpr SimTime kNoEvent = std::numeric_limits<SimTime>::max();

/// LP index the current thread is executing; -1 outside a window.
thread_local int tl_context_lp = -1;

/// RAII context marker so exceptions cannot leave a stale LP context.
struct ContextScope {
  explicit ContextScope(int lp) { tl_context_lp = lp; }
  ~ContextScope() { tl_context_lp = -1; }
};

}  // namespace

// --- TaggedQueue -----------------------------------------------------------
// Same heap/slot mechanics as sim::EventQueue (see event_queue.cpp); kept
// separate so the serial queue — and with it every historical run — stays
// untouched by the engine's id-tagging scheme.

void TaggedQueue::heap_push(Entry entry) const {
  heap_.push_back(entry);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!entry_before(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void TaggedQueue::heap_pop() const {
  const Entry x = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  std::size_t i = 0;
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    const std::size_t stop = std::min(first + 4, n);
    std::size_t best = first;
    for (std::size_t c = first + 1; c < stop; ++c) {
      if (entry_before(heap_[c], heap_[best])) best = c;
    }
    if (!entry_before(heap_[best], x)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = x;
}

EventId TaggedQueue::schedule(SimTime t, std::function<void()> fn) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = std::uint32_t(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.live = true;
  heap_push(Entry{t, next_seq_++, slot, s.gen});
  ++live_count_;
  return make_id(s.gen, slot);
}

bool TaggedQueue::cancel(EventId id) {
  if (id == 0) return false;
  const auto slot = std::uint32_t(id & 0xffffffffu);
  const auto gen = std::uint32_t(id >> 32) & kGenMask;
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  if (!s.live || (s.gen & kGenMask) != gen) return false;
  s.fn = nullptr;
  s.live = false;
  s.gen = (s.gen + 1) & kGenMask;
  free_slots_.push_back(slot);
  --live_count_;
  return true;
}

void TaggedQueue::drop_cancelled_head() const {
  while (!heap_.empty() && !entry_live(heap_.front())) {
    heap_pop();
  }
}

SimTime TaggedQueue::next_time() const {
  drop_cancelled_head();
  assert(!heap_.empty());
  return heap_.front().time;
}

TaggedQueue::Fired TaggedQueue::pop() {
  drop_cancelled_head();
  assert(!heap_.empty());
  const Entry e = heap_.front();
  heap_pop();
  Slot& s = slots_[e.slot];
  Fired fired{e.time, std::move(s.fn)};
  s.fn = nullptr;
  s.live = false;
  s.gen = (s.gen + 1) & kGenMask;
  free_slots_.push_back(e.slot);
  --live_count_;
  return fired;
}

// --- ParallelEngine --------------------------------------------------------

ParallelEngine::ParallelEngine(const Config& config) : cfg_(config) {
  if (cfg_.num_lps == 0 || cfg_.num_lps > kMaxLps) {
    throw std::invalid_argument(
        "ParallelEngine: num_lps must be in [1, " +
        std::to_string(kMaxLps) + "], got " + std::to_string(cfg_.num_lps));
  }
  if (cfg_.lookahead < 1) cfg_.lookahead = 1;
  const int threads =
      std::max(1, std::min<int>(cfg_.threads, int(cfg_.num_lps)));
  cfg_.threads = threads;

  lps_.reserve(cfg_.num_lps);
  for (std::size_t lp = 0; lp < cfg_.num_lps; ++lp) {
    // Independent per-LP stream: splitmix64 over (seed, lp). Derived
    // without drawing from the world's root RNG so enabling the engine
    // does not shift any setup-time stream (the parallel world is the
    // same world the serial path builds).
    util::SplitMix64 mix(cfg_.seed ^ (0x4c50'9E37'79B9'7F4Bull +
                                      0x9E3779B97F4A7C15ull * (lp + 1)));
    lps_.push_back(std::make_unique<LpState>(lp + 2, mix.next()));
  }

  workers_.reserve(std::size_t(threads));
  for (int w = 0; w < threads; ++w) {
    workers_.emplace_back([this, w] { worker_main(w); });
  }
}

ParallelEngine::~ParallelEngine() {
  {
    std::lock_guard<std::mutex> lk(run_mu_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : workers_) t.join();
}

int ParallelEngine::context_lp() { return tl_context_lp; }

SimTime ParallelEngine::now() const {
  const int ctx = tl_context_lp;
  return ctx >= 0 ? lps_[std::size_t(ctx)]->now : global_now_;
}

util::Xoshiro256& ParallelEngine::rng(util::Xoshiro256& root) {
  const int ctx = tl_context_lp;
  return ctx >= 0 ? lps_[std::size_t(ctx)]->rng : root;
}

EventId ParallelEngine::schedule(SimTime t, std::function<void()> fn) {
  const int ctx = tl_context_lp;
  if (ctx >= 0) {
    LpState& lp = *lps_[std::size_t(ctx)];
    return lp.queue.schedule(std::max(t, lp.now), std::move(fn));
  }
  std::lock_guard<std::mutex> lk(global_mu_);
  return global_queue_.schedule(std::max(t, global_now_), std::move(fn));
}

EventId ParallelEngine::schedule_on(std::size_t lp, SimTime t,
                                    std::function<void()> fn) {
  assert(lp < lps_.size());
  LpState& target = *lps_[lp];
  const int ctx = tl_context_lp;
  if (ctx == int(lp)) {
    return target.queue.schedule(std::max(t, target.now), std::move(fn));
  }
  if (ctx < 0) {
    // Coordinating thread: workers are parked, direct push is safe. The
    // target may have locally advanced past a barrier-deferred caller's
    // clock; never schedule into its past.
    return target.queue.schedule(std::max(t, target.now), std::move(fn));
  }
  // Cross-LP: buffer in the destination inbox, stamped for deterministic
  // drain order. Not cancellable (id 0) — the packet-delivery paths that
  // take this route never cancel.
  LpState& src = *lps_[std::size_t(ctx)];
  Post post{std::max(t, src.now), std::uint32_t(ctx) + 1, src.post_seq++,
            std::move(fn)};
  {
    std::lock_guard<std::mutex> lk(target.inbox_mu);
    target.inbox_min = std::min(target.inbox_min, post.time);
    target.inbox.push_back(std::move(post));
  }
  target.inbox_nonempty.store(true, std::memory_order_release);
  return 0;
}

bool ParallelEngine::cancel(EventId id) {
  if (id == 0) return false;
  const auto tag = TaggedQueue::tag_of(id);
  const int ctx = tl_context_lp;
  if (tag == 1) {
    std::lock_guard<std::mutex> lk(global_mu_);
    return global_queue_.cancel(id);
  }
  if (tag < 2 || tag - 2 >= lps_.size()) return false;
  const auto lp = std::size_t(tag - 2);
  if (ctx >= 0 && ctx != int(lp)) {
    // No layer cancels another node's events (audited); refusing keeps the
    // per-LP queues single-writer inside a window.
    RASC_LOG(kWarn) << "ParallelEngine: cross-LP cancel from LP " << ctx
                    << " for LP " << lp << " refused";
    return false;
  }
  return lps_[lp]->queue.cancel(id);
}

void ParallelEngine::exclusive(std::function<void()> fn) {
  const int ctx = tl_context_lp;
  if (ctx < 0) {
    fn();
    return;
  }
  LpState& src = *lps_[std::size_t(ctx)];
  Post post{src.now, std::uint32_t(ctx) + 1, src.post_seq++, std::move(fn)};
  {
    std::lock_guard<std::mutex> lk(excl_mu_);
    excl_posts_.push_back(std::move(post));
  }
  excl_nonempty_.store(true, std::memory_order_release);
}

SimTime ParallelEngine::min_lp_time() const {
  SimTime t = kNoEvent;
  for (const auto& lp : lps_) {
    if (!lp->queue.empty()) t = std::min(t, lp->queue.next_time());
    t = std::min(t, lp->staged_min);
  }
  return t;
}

void ParallelEngine::merge_staged(LpState& lp) {
  if (lp.staged.empty()) return;
  std::sort(lp.staged.begin(), lp.staged.end(),
            [](const Post& a, const Post& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.src != b.src) return a.src < b.src;
              return a.seq < b.seq;
            });
  for (auto& p : lp.staged) lp.queue.schedule(p.time, std::move(p.fn));
  lp.staged.clear();
  lp.staged_min = kNever;
}

void ParallelEngine::drain_posts() {
  assert(tl_context_lp < 0);
  // Stage inboxes: an O(1) buffer swap per LP. The sort + heap pushes —
  // the expensive part of draining — happen in the owning worker at its
  // next window start, in parallel, instead of serially here. staged_min
  // keeps the posts visible to the window-horizon computation meanwhile.
  for (auto& lp : lps_) {
    if (!lp->inbox_nonempty.load(std::memory_order_acquire)) continue;
    std::lock_guard<std::mutex> lk(lp->inbox_mu);
    if (lp->staged.empty()) {
      lp->staged.swap(lp->inbox);
    } else {
      lp->staged.insert(lp->staged.end(),
                        std::make_move_iterator(lp->inbox.begin()),
                        std::make_move_iterator(lp->inbox.end()));
      lp->inbox.clear();
    }
    lp->staged_min = std::min(lp->staged_min, lp->inbox_min);
    lp->inbox_min = kNever;
    lp->inbox_nonempty.store(false, std::memory_order_relaxed);
  }
  if (excl_nonempty_.load(std::memory_order_acquire)) {
    std::vector<Post> posts;
    {
      std::lock_guard<std::mutex> lk(excl_mu_);
      posts.swap(excl_posts_);
      excl_nonempty_.store(false, std::memory_order_relaxed);
    }
    std::sort(posts.begin(), posts.end(),
              [](const Post& a, const Post& b) {
                if (a.time != b.time) return a.time < b.time;
                if (a.src != b.src) return a.src < b.src;
                return a.seq < b.seq;
              });
    for (auto& p : posts) {
      // Deferred work keeps its caller's timestamp; any message it sends
      // still arrives beyond the posting window's horizon (the lookahead
      // bound holds from the original time). Exclusive fns run with
      // ctx < 0, so they cannot create further posts — one pass drains.
      global_now_ = p.time;
      p.fn();
    }
  }
}

void ParallelEngine::run_one_global() {
  std::unique_lock<std::mutex> lk(global_mu_);
  auto fired = global_queue_.pop();
  lk.unlock();
  global_now_ = fired.time;
  ++global_processed_;
  fired.fn();
}

void ParallelEngine::run_window(SimTime horizon) {
  {
    std::lock_guard<std::mutex> lk(run_mu_);
    horizon_ = horizon;
    running_ = cfg_.threads;
    ++epoch_;
  }
  cv_start_.notify_all();
  std::unique_lock<std::mutex> lk(run_mu_);
  cv_done_.wait(lk, [&] { return running_ == 0; });
}

void ParallelEngine::run_lp_window(std::size_t lp_index, SimTime horizon) {
  LpState& lp = *lps_[lp_index];
  // Merge the posts staged at the last barrier before looking at the
  // queue head: a staged post may be this window's earliest event. The
  // staged buffer was frozen while workers were parked, so its content —
  // and therefore the queue's sequence numbering — is independent of the
  // thread partition.
  merge_staged(lp);
  if (lp.queue.empty() || lp.queue.next_time() >= horizon) return;
  ContextScope scope{int(lp_index)};
  do {
    auto fired = lp.queue.pop();
    lp.now = fired.time;
    ++lp.processed;
    fired.fn();
  } while (!lp.queue.empty() && lp.queue.next_time() < horizon);
}

void ParallelEngine::worker_main(int worker) {
  std::uint64_t seen_epoch = 0;
  const std::size_t first = first_lp_of(worker);
  const std::size_t last = first_lp_of(worker + 1);
  for (;;) {
    SimTime horizon;
    {
      std::unique_lock<std::mutex> lk(run_mu_);
      cv_start_.wait(lk,
                     [&] { return shutdown_ || epoch_ != seen_epoch; });
      if (shutdown_) return;
      seen_epoch = epoch_;
      horizon = horizon_;
    }
    for (std::size_t lp = first; lp < last; ++lp) {
      run_lp_window(lp, horizon);
    }
    {
      std::lock_guard<std::mutex> lk(run_mu_);
      if (--running_ == 0) cv_done_.notify_one();
    }
  }
}

void ParallelEngine::run_until(SimTime end) {
  assert(tl_context_lp < 0);
  for (;;) {
    drain_posts();
    const SimTime t_lp = min_lp_time();
    const SimTime t_g = global_queue_.empty() ? kNoEvent
                                              : global_queue_.next_time();
    const SimTime t_min = std::min(t_lp, t_g);
    if (t_min == kNoEvent || t_min > end) break;
    if (t_g <= t_lp) {
      // Global-first tie rule: matches step()'s serial order, so setup
      // (driven by step) and the windowed run agree on interleaving.
      // Consecutive same-time global events are coalesced into one
      // exclusive stretch: with all LP events at >= this timestamp and
      // events never scheduling into the past, running them back to back
      // preserves the one-at-a-time order while paying the barrier
      // bookkeeping (inbox staging + LP min scan) once instead of once
      // per event.
      const SimTime t = t_g;
      run_one_global();
      while (!global_queue_.empty() && global_queue_.next_time() == t) {
        run_one_global();
      }
      continue;
    }
    run_window(std::min({t_lp + cfg_.lookahead, t_g, end + 1}));
  }
  global_now_ = std::max(global_now_, end);
  for (auto& lp : lps_) lp->now = std::max(lp->now, end);
}

bool ParallelEngine::step() {
  assert(tl_context_lp < 0);
  drain_posts();
  // Serial path: no window will merge the staged posts, do it here (the
  // workers are parked, so the coordinating thread may touch staged).
  for (auto& lp : lps_) merge_staged(*lp);
  const SimTime t_g =
      global_queue_.empty() ? kNoEvent : global_queue_.next_time();
  SimTime t_best = kNoEvent;
  int best_lp = -1;
  for (std::size_t i = 0; i < lps_.size(); ++i) {
    auto& q = lps_[i]->queue;
    if (!q.empty() && q.next_time() < t_best) {
      t_best = q.next_time();
      best_lp = int(i);
    }
  }
  if (t_g == kNoEvent && best_lp < 0) return false;
  if (t_g <= t_best) {
    run_one_global();
    return true;
  }
  LpState& lp = *lps_[std::size_t(best_lp)];
  ContextScope scope(best_lp);
  auto fired = lp.queue.pop();
  lp.now = fired.time;
  ++lp.processed;
  fired.fn();
  return true;
}

std::size_t ParallelEngine::run_all(std::size_t max_events) {
  // Serial drain (setup/test path; timed runs use run_until).
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

std::size_t ParallelEngine::pending_events() const {
  // Counts staged/inboxed posts too: a post is a pending event that no
  // queue holds yet. Called between runs (workers parked), so the
  // buffers are stable.
  std::size_t n = global_queue_.size();
  for (const auto& lp : lps_) {
    n += lp->queue.size() + lp->staged.size() + lp->inbox.size();
  }
  return n;
}

std::size_t ParallelEngine::processed_events() const {
  std::size_t n = global_processed_;
  for (const auto& lp : lps_) n += lp->processed;
  return n;
}

}  // namespace rasc::sim
