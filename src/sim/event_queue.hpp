// Pending-event set for the discrete-event simulator.
//
// Events at equal timestamps fire in insertion order (a stable tiebreak via
// a monotone sequence number); without this, heap order would depend on
// allocation details and runs would not be reproducible. Cancellation is
// lazy: cancelled entries stay in the heap and are skipped on pop.
//
// Handlers live in a flat slot array owned by the queue — no per-event
// node allocation or hash lookup. An EventId packs (generation << 32 |
// slot); the generation bumps every time a slot is vacated, so a stale id
// (already fired or cancelled) can never cancel the slot's next tenant,
// and stale heap entries are recognized by a generation mismatch.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/time.hpp"

namespace rasc::sim {

/// Identifies a scheduled event; usable to cancel it.
using EventId = std::uint64_t;

class EventQueue {
 public:
  /// Schedules `fn` at absolute time `t`. Returns an id for cancellation.
  EventId schedule(SimTime t, std::function<void()> fn);

  /// Cancels a pending event. Returns false if the event already fired or
  /// was already cancelled.
  bool cancel(EventId id);

  bool empty() const { return live_count_ == 0; }
  std::size_t size() const { return live_count_; }

  /// Time of the earliest pending event; undefined when empty().
  SimTime next_time() const;

  /// Pops and returns the earliest event. Requires !empty().
  struct Fired {
    SimTime time;
    EventId id;
    std::function<void()> fn;
  };
  Fired pop();

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;   // FIFO tiebreak within a timestamp
    std::uint32_t slot;
    std::uint32_t gen;
  };
  struct Slot {
    std::function<void()> fn;
    std::uint32_t gen = 0;
    bool live = false;
  };

  bool entry_live(const Entry& e) const {
    const Slot& s = slots_[e.slot];
    return s.live && s.gen == e.gen;
  }

  static bool entry_before(const Entry& a, const Entry& b);
  void heap_push(Entry entry) const;
  void heap_pop() const;
  void drop_cancelled_head() const;

  mutable std::vector<Entry> heap_;  // 4-ary min-heap on (time, seq)
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_count_ = 0;
};

}  // namespace rasc::sim
