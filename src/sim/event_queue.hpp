// Pending-event set for the discrete-event simulator.
//
// Events at equal timestamps fire in insertion order (a stable tiebreak via
// a monotone sequence number); without this, heap order would depend on
// allocation details and runs would not be reproducible. Cancellation is
// lazy: cancelled entries stay in the heap and are skipped on pop.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace rasc::sim {

/// Identifies a scheduled event; usable to cancel it.
using EventId = std::uint64_t;

class EventQueue {
 public:
  /// Schedules `fn` at absolute time `t`. Returns an id for cancellation.
  EventId schedule(SimTime t, std::function<void()> fn);

  /// Cancels a pending event. Returns false if the event already fired or
  /// was already cancelled.
  bool cancel(EventId id);

  bool empty() const { return live_count_ == 0; }
  std::size_t size() const { return live_count_; }

  /// Time of the earliest pending event; undefined when empty().
  SimTime next_time() const;

  /// Pops and returns the earliest event. Requires !empty().
  struct Fired {
    SimTime time;
    EventId id;
    std::function<void()> fn;
  };
  Fired pop();

 private:
  struct Entry {
    SimTime time;
    EventId id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;  // FIFO within a timestamp
    }
  };

  void drop_cancelled_head() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_map<EventId, std::function<void()>> handlers_;
  EventId next_id_ = 1;
  std::size_t live_count_ = 0;
};

}  // namespace rasc::sim
