// The discrete-event simulator core.
//
// One Simulator instance is a self-contained simulated world. By default it
// is single-threaded: experiment parallelism comes from running many
// independent Simulator instances on a thread pool (one per experiment
// cell), never from sharing one instance across threads.
//
// enable_parallel() switches the instance to the sharded conservative PDES
// engine (see sim/parallel_engine.hpp): one logical process per simulated
// node, worker threads executing safe windows bounded by the topology's
// minimum link latency. The serial path is not routed through the engine
// at all, so a Simulator that never calls enable_parallel behaves — byte
// for byte — exactly as it always has.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "sim/event_queue.hpp"
#include "sim/parallel_engine.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"

namespace rasc::sim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : rng_(seed), seed_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  struct ParallelConfig {
    int threads = 2;
    /// Number of logical processes (one per simulated node).
    std::size_t num_lps = 0;
    /// Conservative lower bound on cross-LP message delay, in
    /// microseconds (see conservative_lookahead() in sim/topology.hpp).
    SimDuration lookahead = 1;
  };

  /// Switches to the parallel engine. Call once, before any event is
  /// scheduled (worlds call it right after building their topology).
  void enable_parallel(const ParallelConfig& config);
  bool parallel() const { return engine_ != nullptr; }

  /// Context clock: the executing LP's local time in parallel mode.
  SimTime now() const { return engine_ ? engine_->now() : now_; }

  /// Root RNG for this world; subsystems should take `rng().split(tag)`.
  /// In parallel mode, called from LP context, this is the LP's own
  /// stream instead (never shared across threads).
  util::Xoshiro256& rng() { return engine_ ? engine_->rng(rng_) : rng_; }

  /// Schedules `fn` to run `delay` after now. Negative delays clamp to now
  /// (events never fire in the past).
  EventId call_after(SimDuration delay, std::function<void()> fn);

  /// Schedules `fn` at absolute time `t` (clamped to now).
  EventId call_at(SimTime t, std::function<void()> fn);

  /// Like call_after/call_at, but the event is owned by (and runs on)
  /// logical process `lp` in parallel mode. Serial mode ignores the pin.
  /// Cross-LP calls return 0: such events cannot be cancelled.
  EventId call_after_on(std::size_t lp, SimDuration delay,
                        std::function<void()> fn);
  EventId call_at_on(std::size_t lp, SimTime t, std::function<void()> fn);

  /// Runs `fn` with exclusive access to the whole world: immediately in
  /// serial mode (and on the coordinating thread in parallel mode); from
  /// LP context it is deferred to the next safe-window barrier, where it
  /// runs with every worker parked and now() reporting the caller's time.
  /// Use for work that reads or writes state owned by many nodes.
  void exclusive(std::function<void()> fn);

  bool cancel(EventId id) {
    return engine_ ? engine_->cancel(id) : queue_.cancel(id);
  }

  /// Runs events until the queue is empty or simulated time would exceed
  /// `end`. The clock is left at min(end, last event time).
  void run_until(SimTime end);

  /// Runs until the queue drains (or `max_events` fire — a runaway guard).
  /// Returns the number of events processed.
  std::size_t run_all(std::size_t max_events = SIZE_MAX);

  /// Fires exactly one event if any is pending; returns whether one fired.
  bool step();

  std::size_t pending_events() const {
    return engine_ ? engine_->pending_events() : queue_.size();
  }
  std::size_t processed_events() const {
    return engine_ ? engine_->processed_events() : processed_;
  }

 private:
  EventQueue queue_;
  SimTime now_ = 0;
  std::size_t processed_ = 0;
  util::Xoshiro256 rng_;
  std::uint64_t seed_;
  std::unique_ptr<ParallelEngine> engine_;
};

}  // namespace rasc::sim
