// The discrete-event simulator core.
//
// One Simulator instance is a self-contained simulated world. It is
// single-threaded by design: experiment parallelism comes from running many
// independent Simulator instances on a thread pool (one per experiment
// cell), never from sharing one instance across threads.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"

namespace rasc::sim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : rng_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  /// Root RNG for this world; subsystems should take `rng().split(tag)`.
  util::Xoshiro256& rng() { return rng_; }

  /// Schedules `fn` to run `delay` after now. Negative delays clamp to now
  /// (events never fire in the past).
  EventId call_after(SimDuration delay, std::function<void()> fn);

  /// Schedules `fn` at absolute time `t` (clamped to now).
  EventId call_at(SimTime t, std::function<void()> fn);

  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs events until the queue is empty or simulated time would exceed
  /// `end`. The clock is left at min(end, last event time).
  void run_until(SimTime end);

  /// Runs until the queue drains (or `max_events` fire — a runaway guard).
  /// Returns the number of events processed.
  std::size_t run_all(std::size_t max_events = SIZE_MAX);

  /// Fires exactly one event if any is pending; returns whether one fired.
  bool step();

  std::size_t pending_events() const { return queue_.size(); }
  std::size_t processed_events() const { return processed_; }

 private:
  EventQueue queue_;
  SimTime now_ = 0;
  std::size_t processed_ = 0;
  util::Xoshiro256 rng_;
};

}  // namespace rasc::sim
