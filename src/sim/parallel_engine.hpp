// Conservative parallel discrete-event engine (PDES).
//
// The serial Simulator executes one global event queue. This engine shards
// the queue into one logical process (LP) per simulated node plus one
// *global* queue for work that is not owned by any node (experiment
// submits, chaos timelines, SLO sampling, and everything posted through
// Simulator::exclusive). Worker threads execute LP events in parallel
// inside conservative safe windows; the coordinating thread runs global
// events alone, with all workers parked, so cross-node reads and writes
// from global events are race-free by construction.
//
// Synchronization protocol (classic conservative bounded-lag / safe-window
// scheme; see ISSUE 6 and DESIGN.md §13):
//
//   window:  let T_lp = min over LPs of their next event time, and T_g the
//            next global event time. If T_g <= T_lp the global event runs
//            exclusively (global-first tie rule). Otherwise every LP may
//            execute its events with t < horizon, where
//                horizon = min(T_lp + lookahead, T_g, end + 1),
//            concurrently with the others.
//
//   safety:  `lookahead` must under-estimate the minimum cross-LP message
//            delay. In this codebase a cross-node packet sent at time t
//            arrives no earlier than t + 1us (output serialization is
//            ceil()ed) + min link latency scaled by the worst-case jitter
//            factor, so any send issued by an event at t >= T_lp arrives
//            at >= T_lp + lookahead >= horizon: never inside the window
//            that generated it. Cross-LP messages are buffered in the
//            destination LP's inbox, stamped with the window epoch that
//            produced them, and sorted + merged into the LP's queue by the
//            owning worker at its next window start. A worker drains
//            exactly the posts of *completed* windows (stamp < its current
//            epoch) — a set frozen at the barrier by construction — so the
//            coordinating thread touches no per-LP buffer at all between
//            windows; its only per-LP cost is the horizon min-scan.
//
//   determinism: every ordering decision is a function of
//            (time, source LP, per-source sequence number) — never of the
//            LP-to-thread partition. Two runs with the same (seed, num_lps)
//            produce identical event interleavings for ANY thread count
//            >= 2; the serial path (no engine) remains byte-identical to
//            historical runs because it is not routed through this class.
//
// Each LP owns a seeded RNG stream derived from (seed, lp) with splitmix64
// so parallel-mode random draws never contend and never depend on global
// event interleaving.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/event_queue.hpp"  // EventId
#include "sim/time.hpp"
#include "util/rng.hpp"

namespace rasc::sim {

/// Engine-internal pending-event set: the same 4-ary min-heap with
/// slot+generation lazy cancellation as sim::EventQueue, but every id
/// carries the owning shard's tag in its top 12 bits so a cancellation can
/// be routed back to the right queue. Generations are 20 bits here (a slot
/// must be reused ~1M times before a stale id could alias — far beyond any
/// run's per-slot churn).
class TaggedQueue {
 public:
  static constexpr int kTagShift = 52;
  static constexpr std::uint32_t kGenMask = 0xFFFFFu;

  /// `tag` must be nonzero (so no id is ever 0, the "no event" sentinel).
  explicit TaggedQueue(std::uint64_t tag) : tag_(tag << kTagShift) {}

  static std::uint64_t tag_of(EventId id) { return id >> kTagShift; }

  EventId schedule(SimTime t, std::function<void()> fn);
  bool cancel(EventId id);

  bool empty() const { return live_count_ == 0; }
  std::size_t size() const { return live_count_; }
  SimTime next_time() const;

  struct Fired {
    SimTime time;
    std::function<void()> fn;
  };
  Fired pop();

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };
  struct Slot {
    std::function<void()> fn;
    std::uint32_t gen = 0;
    bool live = false;
  };

  EventId make_id(std::uint32_t gen, std::uint32_t slot) const {
    return tag_ | (EventId(gen & kGenMask) << 32) | slot;
  }
  bool entry_live(const Entry& e) const {
    const Slot& s = slots_[e.slot];
    return s.live && s.gen == e.gen;
  }
  static bool entry_before(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }
  void heap_push(Entry entry) const;
  void heap_pop() const;
  void drop_cancelled_head() const;

  std::uint64_t tag_;
  mutable std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_count_ = 0;
};

class ParallelEngine {
 public:
  struct Config {
    int threads = 2;
    std::size_t num_lps = 0;
    /// Conservative lower bound on cross-LP message delay (microseconds).
    /// Must be >= 1; see conservative_lookahead() in sim/topology.hpp.
    SimDuration lookahead = 1;
    /// World seed; per-LP RNG streams are derived from it without drawing
    /// from (and therefore without perturbing) the root generator.
    std::uint64_t seed = 1;
  };

  /// 12-bit tag space minus the global tag (1) and the zero tag.
  static constexpr std::size_t kMaxLps = 4094;

  explicit ParallelEngine(const Config& config);
  ~ParallelEngine();

  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  /// LP index the calling thread is currently executing, or -1 on the
  /// coordinating thread (global events, exclusive work, setup).
  static int context_lp();

  std::size_t num_lps() const { return lps_.size(); }
  int threads() const { return cfg_.threads; }
  SimDuration lookahead() const { return cfg_.lookahead; }

  /// Context clock: the executing LP's local time, or the global time on
  /// the coordinating thread.
  SimTime now() const;
  /// Context RNG: the executing LP's stream, or `root` on the
  /// coordinating thread.
  util::Xoshiro256& rng(util::Xoshiro256& root);

  /// Schedules into the calling context's own queue (LP or global).
  EventId schedule(SimTime t, std::function<void()> fn);
  /// Schedules onto a specific LP. Same-LP and coordinating-thread calls
  /// push directly and return a cancellable id; cross-LP calls post to the
  /// destination inbox (drained at the next barrier) and return 0 — such
  /// events cannot be cancelled.
  EventId schedule_on(std::size_t lp, SimTime t, std::function<void()> fn);
  /// Cancels an event. Workers may cancel events in their own LP's queue
  /// and, mutex-guarded, in the global queue; cancelling another LP's
  /// event is unsupported (returns false).
  bool cancel(EventId id);

  /// Defers `fn` to the next safe-window barrier where it runs on the
  /// coordinating thread with every worker parked, with now() reporting
  /// the caller's timestamp. From the coordinating thread, runs inline.
  void exclusive(std::function<void()> fn);

  void run_until(SimTime end);
  std::size_t run_all(std::size_t max_events);
  bool step();

  std::size_t pending_events() const;
  std::size_t processed_events() const;

 private:
  /// A buffered cross-LP (or LP-to-exclusive) work item. Drain order is
  /// (time, src, seq): total, and independent of the thread partition.
  struct Post {
    SimTime time;
    std::uint32_t src;  // source LP + 1 (0 reserved: coordinator posts none)
    std::uint64_t seq;  // per-source monotone counter
    /// Window epoch the posting event ran in (0: posted outside a window,
    /// e.g. from step()'s serial LP execution). The owning worker merges
    /// posts with epoch < its current window's epoch: exactly the set that
    /// was frozen at the last barrier, whatever the arrival timing of
    /// same-epoch posts from concurrently running workers.
    std::uint64_t epoch;
    std::function<void()> fn;
  };

  static constexpr SimTime kNever = std::numeric_limits<SimTime>::max();

  struct alignas(64) LpState {
    LpState(std::uint64_t tag, std::uint64_t rng_seed)
        : queue(tag), rng(rng_seed) {}
    TaggedQueue queue;
    SimTime now = 0;
    std::size_t processed = 0;
    std::uint64_t post_seq = 0;  // stamps this LP's outgoing posts
    util::Xoshiro256 rng;
    std::mutex inbox_mu;
    std::vector<Post> inbox;
    /// Earliest time among buffered inbox posts (guarded by inbox_mu;
    /// read lock-free by the coordinating thread at barriers, where the
    /// workers' run_mu_ handshake orders the writes before the read).
    SimTime inbox_min = kNever;
    std::atomic<bool> inbox_nonempty{false};
    /// Reusable merge buffer of the owning worker (no per-window allocs).
    std::vector<Post> merge_scratch;
  };

  // Partition by cfg_.threads, not workers_.size(): workers start running
  // while the thread vector is still being filled in the constructor.
  std::size_t first_lp_of(int worker) const {
    return lps_.size() * std::size_t(worker) / std::size_t(cfg_.threads);
  }

  void worker_main(int worker);
  void run_lp_window(std::size_t lp, SimTime horizon,
                     std::uint64_t window_epoch);
  /// Barrier bookkeeping, coordinating thread only: runs deferred
  /// exclusive work in (time, src, seq) order. Inboxes are not touched —
  /// each owning worker drains its own at window start.
  void drain_exclusive();
  /// Extracts the inbox posts stamped before `window_epoch`, sorts them
  /// by (time, src, seq) and schedules them into the LP's queue. Called
  /// by the owning worker at window start, or by the coordinating thread
  /// (step()/serial paths, with kDrainAll) while workers are parked.
  static void merge_inbox(LpState& lp, std::uint64_t window_epoch);
  void run_one_global();
  void run_window(SimTime horizon);
  SimTime min_lp_time() const;

  Config cfg_;
  std::vector<std::unique_ptr<LpState>> lps_;

  TaggedQueue global_queue_{1};
  /// Guards global_queue_ against concurrent worker-side cancels (e.g. an
  /// ack handler on an LP cancelling a coordinator timeout).
  std::mutex global_mu_;
  SimTime global_now_ = 0;
  std::size_t global_processed_ = 0;

  std::mutex excl_mu_;
  std::vector<Post> excl_posts_;
  std::atomic<bool> excl_nonempty_{false};

  /// Earliest time the coordinating thread scheduled onto any LP since the
  /// last reset (coordinating thread only). Lets run_until batch a stretch
  /// of global events under one park/unpark: the true min LP event time
  /// can only drop below its last computed value through exactly these
  /// pushes, so min(t_lp, coord_sched_min_) stays a conservative floor
  /// while globals run back to back.
  SimTime coord_sched_min_ = kNever;

  std::vector<std::thread> workers_;
  std::mutex run_mu_;
  std::condition_variable cv_start_, cv_done_;
  std::uint64_t epoch_ = 0;
  SimTime horizon_ = 0;
  int running_ = 0;
  bool shutdown_ = false;
};

}  // namespace rasc::sim
