// Simulated network: access-link serialization at both endpoints plus
// wide-area propagation latency.
//
// A packet from src to dst experiences, in order:
//   1. src output-port serialization: the out port is a FIFO; transmission
//      takes size / bw_out and starts when the port frees up;
//   2. propagation latency (from the topology matrix);
//   3. dst input-port serialization: computed *at arrival time* so that
//      packets from different senders contend in true arrival order;
//   4. delivery to the destination node's registered handler.
//
// Both serialization steps are what make RASC's b_in/b_out constraints
// (paper §3.2) physically binding: overload a node and queueing delay —
// hence deadline misses, drops and jitter — emerges here.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/message.hpp"
#include "sim/simulator.hpp"
#include "sim/topology.hpp"

namespace rasc::sim {

class Network {
 public:
  using Handler = std::function<void(const Packet&)>;
  /// Invoked when a packet is tail-dropped at one of `node`'s ports
  /// (outgoing = true for the send-side queue). Lets upper layers feed
  /// the loss into their monitoring.
  using DropHandler = std::function<void(const Packet&, bool outgoing)>;

  Network(Simulator& simulator, Topology topology);

  /// Registers the upper-layer handler invoked when a packet is delivered
  /// to `node`.
  void set_handler(NodeIndex node, Handler handler);

  /// Registers the tail-drop observer for `node`.
  void set_drop_handler(NodeIndex node, DropHandler handler);

  /// Sends `payload` of `size_bytes` from src to dst. Loopback (src == dst)
  /// delivers after a fixed small local delay without consuming bandwidth.
  void send(NodeIndex src, NodeIndex dst, std::int64_t size_bytes,
            MessagePtr payload);

  std::size_t size() const { return topology_.size(); }
  const Topology& topology() const { return topology_; }

  /// Marks a node as failed: all traffic to/from it is silently dropped
  /// (used by the failure-recovery example and fault-injection tests).
  void set_node_up(NodeIndex node, bool up);
  bool node_up(NodeIndex node) const { return up_[std::size_t(node)]; }

  // --- Traffic accounting (ground truth for the resource monitor) ---

  /// Cumulative payload+frame bytes that have *started* transmission from
  /// `node` (counted at departure start).
  std::int64_t bytes_sent(NodeIndex node) const {
    return bytes_sent_[std::size_t(node)];
  }
  /// Cumulative bytes delivered to `node` (counted at delivery).
  std::int64_t bytes_received(NodeIndex node) const {
    return bytes_received_[std::size_t(node)];
  }
  std::int64_t packets_sent() const { return packets_sent_; }
  std::int64_t packets_dropped() const { return packets_dropped_; }
  /// Tail drops at `node`'s port queues.
  std::int64_t out_queue_drops(NodeIndex node) const {
    return out_queue_drops_[std::size_t(node)];
  }
  std::int64_t in_queue_drops(NodeIndex node) const {
    return in_queue_drops_[std::size_t(node)];
  }

  /// Diagnostic: received wire bytes per message kind (excludes loopback).
  const std::map<std::string, std::int64_t>& received_by_kind(
      NodeIndex node) const {
    return received_by_kind_[std::size_t(node)];
  }
  /// Diagnostic: sent wire bytes per message kind (excludes loopback).
  const std::map<std::string, std::int64_t>& sent_by_kind(
      NodeIndex node) const {
    return sent_by_kind_[std::size_t(node)];
  }

  /// Earliest time the out port of `node` is free (for tests).
  SimTime out_port_free_at(NodeIndex node) const {
    return out_free_at_[std::size_t(node)];
  }
  SimTime in_port_free_at(NodeIndex node) const {
    return in_free_at_[std::size_t(node)];
  }

  /// Serialization time of `size_bytes` at `kbps` (exposed for tests and
  /// for the composer's capacity math).
  static SimDuration serialization_time(std::int64_t size_bytes, double kbps);

  /// Per-packet framing overhead added to every transmission (headers).
  static constexpr std::int64_t kFrameOverheadBytes = 48;

  /// Fixed loopback delivery delay.
  static constexpr SimDuration kLoopbackDelay = usec(20);

 private:
  void arrive(Packet packet);
  void deliver(const Packet& packet);

  void notify_drop(NodeIndex node, const Packet& packet, bool outgoing);

  Simulator& simulator_;
  Topology topology_;
  std::vector<Handler> handlers_;
  std::vector<DropHandler> drop_handlers_;
  std::vector<SimTime> out_free_at_;
  std::vector<SimTime> in_free_at_;
  std::vector<std::int64_t> bytes_sent_;
  std::vector<std::int64_t> bytes_received_;
  std::vector<std::map<std::string, std::int64_t>> received_by_kind_;
  std::vector<std::map<std::string, std::int64_t>> sent_by_kind_;
  std::vector<std::int64_t> out_queue_drops_;
  std::vector<std::int64_t> in_queue_drops_;
  std::vector<bool> up_;
  std::int64_t packets_sent_ = 0;
  std::int64_t packets_dropped_ = 0;
  util::Xoshiro256 loss_rng_;
};

}  // namespace rasc::sim
