// Simulated network: access-link serialization at both endpoints plus
// wide-area propagation latency.
//
// A packet from src to dst experiences, in order:
//   1. src output-port serialization: the out port is a FIFO; transmission
//      takes size / bw_out and starts when the port frees up;
//   2. propagation latency (from the topology matrix);
//   3. dst input-port serialization: computed *at arrival time* so that
//      packets from different senders contend in true arrival order;
//   4. delivery to the destination node's registered handler.
//
// Both serialization steps are what make RASC's b_in/b_out constraints
// (paper §3.2) physically binding: overload a node and queueing delay —
// hence deadline misses, drops and jitter — emerges here.
//
// Traffic accounting lives in an obs::MetricRegistry (one shared with the
// rest of the deployment, or a private one when none is supplied):
// per-node byte/packet/drop counters plus per-(node, kind) wire bytes.
// Message kinds are interned to dense ids on first sight, so the per-send
// bookkeeping is flat vector indexing, not a string-keyed map lookup.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metric_registry.hpp"
#include "obs/unit_trace.hpp"
#include "sim/message.hpp"
#include "sim/simulator.hpp"
#include "sim/topology.hpp"

namespace rasc::sim {

class Network {
 public:
  using Handler = std::function<void(const Packet&)>;
  /// Invoked when a packet is tail-dropped at one of `node`'s ports
  /// (outgoing = true for the send-side queue). Lets upper layers feed
  /// the loss into their monitoring.
  using DropHandler = std::function<void(const Packet&, bool outgoing)>;

  /// Dense id of an interned message kind (per-Network scope).
  using KindId = std::uint32_t;

  /// `registry` receives the traffic accounting; when null the network
  /// owns a private registry (tests, standalone use). `trace`, when
  /// non-null, gets port-drop / node-failure hops for data units.
  Network(Simulator& simulator, Topology topology,
          obs::MetricRegistry* registry = nullptr,
          obs::UnitTrace* trace = nullptr);

  /// Registers the upper-layer handler invoked when a packet is delivered
  /// to `node`.
  void set_handler(NodeIndex node, Handler handler);

  /// Registers the tail-drop observer for `node`.
  void set_drop_handler(NodeIndex node, DropHandler handler);

  /// Sends `payload` of `size_bytes` from src to dst. Loopback (src == dst)
  /// delivers after a fixed small local delay without consuming bandwidth.
  void send(NodeIndex src, NodeIndex dst, std::int64_t size_bytes,
            MessagePtr payload);

  std::size_t size() const { return topology_.size(); }
  const Topology& topology() const { return topology_; }

  /// Marks a node as failed: all traffic to/from it is silently dropped
  /// (used by the failure-recovery example and fault-injection tests).
  /// Raw toggle — no counters; prefer fail_node/restore_node.
  void set_node_up(NodeIndex node, bool up);
  bool node_up(NodeIndex node) const { return up_[std::size_t(node)]; }

  // --- Chaos hooks (no-ops until used: the baseline packet path is
  // byte-identical while every scale is 1.0 and every rate is 0) ---

  /// Takes the node down and counts the transition under
  /// net.node_failures{node}. No-op if already down.
  void fail_node(NodeIndex node);
  /// Counterpart to fail_node: brings the node back with *empty* port
  /// queues — whatever was serializing at failure time died with the
  /// node — and counts it under net.node_restores{node}. No-op if up.
  void restore_node(NodeIndex node);
  std::int64_t node_failures(NodeIndex node) const;
  std::int64_t node_restores(NodeIndex node) const;

  /// Scales `node`'s access bandwidth (both directions); 1.0 = nominal.
  /// Clamped below to 0.001 so serialization time stays finite.
  void set_bandwidth_scale(NodeIndex node, double scale);
  double bandwidth_scale(NodeIndex node) const {
    return bw_scale_[std::size_t(node)];
  }

  /// Extra one-way propagation latency added to every packet `node`
  /// sends or receives (degraded / rerouted link).
  void set_extra_latency(NodeIndex node, SimDuration extra);

  /// Independent per-packet loss probability applied to arrivals at
  /// `node`, on top of the topology-wide loss_rate.
  void set_injected_loss(NodeIndex node, double rate);

  /// What a send interceptor may do to one packet before it touches the
  /// port queues. Duplicates re-enter send() immediately; a delayed
  /// packet re-enters after `extra_delay`. Neither is re-intercepted.
  struct SendPerturbation {
    bool drop = false;
    SimDuration extra_delay = 0;
    int duplicates = 0;
  };
  using SendInterceptor =
      std::function<SendPerturbation(NodeIndex src, NodeIndex dst,
                                     const Message* payload)>;
  /// Installs (or, with nullptr, removes) the chaos send interceptor.
  /// Consulted once per original send() call.
  void set_send_interceptor(SendInterceptor interceptor);

  // --- Traffic accounting (ground truth for the resource monitor) ---

  /// Cumulative payload+frame bytes that have *started* transmission from
  /// `node` (counted at departure start).
  std::int64_t bytes_sent(NodeIndex node) const {
    return bytes_sent_[std::size_t(node)]->value();
  }
  /// Cumulative bytes delivered to `node` (counted at delivery).
  std::int64_t bytes_received(NodeIndex node) const {
    return bytes_received_[std::size_t(node)]->value();
  }
  std::int64_t packets_sent() const { return packets_sent_->value(); }
  std::int64_t packets_dropped() const { return packets_dropped_->value(); }
  /// Tail drops at `node`'s port queues.
  std::int64_t out_queue_drops(NodeIndex node) const {
    return out_queue_drops_[std::size_t(node)]->value();
  }
  std::int64_t in_queue_drops(NodeIndex node) const {
    return in_queue_drops_[std::size_t(node)]->value();
  }

  // --- Per-kind accounting (interned kinds, flat storage) ---

  /// Interned message kinds, in id order. Index with a KindId.
  const std::vector<std::string>& kind_names() const { return kind_names_; }
  /// Received wire bytes of one interned kind at `node` (0 for an id this
  /// network has not seen).
  std::int64_t received_bytes_of_kind(NodeIndex node, KindId kind) const;
  std::int64_t sent_bytes_of_kind(NodeIndex node, KindId kind) const;

  /// Diagnostic compatibility views: per-kind wire bytes as name-keyed
  /// maps (excludes loopback; only kinds with nonzero totals appear).
  std::map<std::string, std::int64_t> received_by_kind(NodeIndex node) const;
  std::map<std::string, std::int64_t> sent_by_kind(NodeIndex node) const;

  /// Earliest time the out port of `node` is free (for tests).
  SimTime out_port_free_at(NodeIndex node) const {
    return out_free_at_[std::size_t(node)];
  }
  SimTime in_port_free_at(NodeIndex node) const {
    return in_free_at_[std::size_t(node)];
  }

  /// Serialization time of `size_bytes` at `kbps` (exposed for tests and
  /// for the composer's capacity math).
  static SimDuration serialization_time(std::int64_t size_bytes, double kbps);

  /// Per-packet framing overhead added to every transmission (headers).
  static constexpr std::int64_t kFrameOverheadBytes = 48;

  /// Fixed loopback delivery delay.
  static constexpr SimDuration kLoopbackDelay = usec(20);

  /// Hard cap on distinct interned message kinds. Per-(node, kind) counter
  /// columns are pre-sized to this so parallel LPs can index them without
  /// synchronization; interning a kind beyond the cap throws. Real
  /// deployments use ~a dozen kinds.
  static constexpr std::size_t kMaxKinds = 64;

 private:
  void arrive(Packet packet);
  void deliver(const Packet& packet);

  void notify_drop(NodeIndex node, const Packet& packet, bool outgoing);
  void count_lost(const Packet& packet, obs::DropReason reason);

  /// Interns the payload's kind, growing the per-node kind columns.
  KindId kind_id(const Message* payload);

  Simulator& simulator_;
  Topology topology_;

  std::unique_ptr<obs::MetricRegistry> owned_registry_;
  obs::MetricRegistry* registry_;
  obs::UnitTrace* trace_;

  std::vector<Handler> handlers_;
  std::vector<DropHandler> drop_handlers_;
  std::vector<SimTime> out_free_at_;
  std::vector<SimTime> in_free_at_;

  // Registry-backed cells, cached as raw pointers for flat indexing.
  std::vector<obs::Counter*> bytes_sent_;
  std::vector<obs::Counter*> bytes_received_;
  std::vector<obs::Counter*> out_queue_drops_;
  std::vector<obs::Counter*> in_queue_drops_;
  obs::Counter* packets_sent_;
  obs::Counter* packets_dropped_;

  // Kind interning: `kind()` returns string literals, so a pointer probe
  // short-circuits the by-content lookup after each call site's first
  // send. The probe table is a fixed open-addressed array of (atomic key,
  // id) pairs so parallel LPs can read it lock-free; `kind_mu_` guards the
  // slow path that interns a new kind (string dedupe + column fill + slot
  // publish, key released last). Per-kind byte cells are indexed
  // [node][kind id]; columns are pre-sized to kMaxKinds so concurrent
  // indexing never observes a vector resize.
  struct KindSlot {
    std::atomic<const char*> key{nullptr};
    std::atomic<KindId> id{0};
  };
  static constexpr std::size_t kKindTableSize = 256;  // power of two
  std::array<KindSlot, kKindTableSize> kind_table_;
  mutable std::mutex kind_mu_;
  std::map<std::string, KindId> kind_ids_;
  std::vector<std::string> kind_names_;
  std::vector<std::vector<obs::Counter*>> sent_by_kind_;
  std::vector<std::vector<obs::Counter*>> received_by_kind_;

  std::vector<bool> up_;
  util::Xoshiro256 loss_rng_;
  /// Parallel mode only: one RNG stream per node, derived once from
  /// `loss_rng_`'s state at construction, so jitter/loss draws for traffic
  /// owned by different LPs never contend on a shared stream. Empty in
  /// serial mode, where `loss_rng_` keeps its historical draw sequence.
  std::vector<util::Xoshiro256> lp_rngs_;
  util::Xoshiro256& rng_for(NodeIndex node) {
    return lp_rngs_.empty() ? loss_rng_ : lp_rngs_[std::size_t(node)];
  }

  // Chaos state. Defaults leave the packet path bit-identical to a
  // chaos-free build: scale 1.0 multiplies exactly, extra latency 0 adds
  // exactly, loss 0 draws nothing, null interceptor tests one pointer.
  std::vector<double> bw_scale_;
  std::vector<SimDuration> extra_latency_;
  std::vector<double> injected_loss_;
  SendInterceptor send_interceptor_;
  // The re-intercept depth guard lives in a thread_local in network.cpp:
  // delayed/duplicated copies re-enter send() on whichever thread runs the
  // owning LP, and the guard must not leak between LPs.
};

}  // namespace rasc::sim
