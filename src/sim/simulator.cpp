#include "sim/simulator.hpp"

#include <algorithm>

namespace rasc::sim {

EventId Simulator::call_after(SimDuration delay, std::function<void()> fn) {
  return call_at(now_ + std::max<SimDuration>(delay, 0), std::move(fn));
}

EventId Simulator::call_at(SimTime t, std::function<void()> fn) {
  return queue_.schedule(std::max(t, now_), std::move(fn));
}

void Simulator::run_until(SimTime end) {
  while (!queue_.empty() && queue_.next_time() <= end) {
    auto fired = queue_.pop();
    now_ = fired.time;
    ++processed_;
    fired.fn();
  }
  now_ = std::max(now_, end);
}

std::size_t Simulator::run_all(std::size_t max_events) {
  std::size_t n = 0;
  while (!queue_.empty() && n < max_events) {
    auto fired = queue_.pop();
    now_ = fired.time;
    ++processed_;
    ++n;
    fired.fn();
  }
  return n;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto fired = queue_.pop();
  now_ = fired.time;
  ++processed_;
  fired.fn();
  return true;
}

}  // namespace rasc::sim
