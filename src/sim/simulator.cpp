#include "sim/simulator.hpp"

#include <algorithm>
#include <stdexcept>

namespace rasc::sim {

void Simulator::enable_parallel(const ParallelConfig& config) {
  if (engine_ != nullptr) {
    throw std::logic_error("Simulator::enable_parallel called twice");
  }
  if (!queue_.empty() || processed_ != 0) {
    throw std::logic_error(
        "Simulator::enable_parallel: events already scheduled");
  }
  ParallelEngine::Config pc;
  pc.threads = config.threads;
  pc.num_lps = config.num_lps;
  pc.lookahead = config.lookahead;
  pc.seed = seed_;
  engine_ = std::make_unique<ParallelEngine>(pc);
}

EventId Simulator::call_after(SimDuration delay, std::function<void()> fn) {
  if (engine_ != nullptr) {
    const SimTime base = engine_->now();
    return engine_->schedule(base + std::max<SimDuration>(delay, 0),
                             std::move(fn));
  }
  return call_at(now_ + std::max<SimDuration>(delay, 0), std::move(fn));
}

EventId Simulator::call_at(SimTime t, std::function<void()> fn) {
  if (engine_ != nullptr) {
    return engine_->schedule(t, std::move(fn));  // engine clamps to now
  }
  return queue_.schedule(std::max(t, now_), std::move(fn));
}

EventId Simulator::call_after_on(std::size_t lp, SimDuration delay,
                                 std::function<void()> fn) {
  if (engine_ != nullptr) {
    const SimTime base = engine_->now();
    return engine_->schedule_on(lp, base + std::max<SimDuration>(delay, 0),
                                std::move(fn));
  }
  return call_after(delay, std::move(fn));
}

EventId Simulator::call_at_on(std::size_t lp, SimTime t,
                              std::function<void()> fn) {
  if (engine_ != nullptr) {
    return engine_->schedule_on(lp, t, std::move(fn));
  }
  return call_at(t, std::move(fn));
}

void Simulator::exclusive(std::function<void()> fn) {
  if (engine_ != nullptr) {
    engine_->exclusive(std::move(fn));
    return;
  }
  fn();
}

void Simulator::run_until(SimTime end) {
  if (engine_ != nullptr) {
    engine_->run_until(end);
    return;
  }
  while (!queue_.empty() && queue_.next_time() <= end) {
    auto fired = queue_.pop();
    now_ = fired.time;
    ++processed_;
    fired.fn();
  }
  now_ = std::max(now_, end);
}

std::size_t Simulator::run_all(std::size_t max_events) {
  if (engine_ != nullptr) return engine_->run_all(max_events);
  std::size_t n = 0;
  while (!queue_.empty() && n < max_events) {
    auto fired = queue_.pop();
    now_ = fired.time;
    ++processed_;
    ++n;
    fired.fn();
  }
  return n;
}

bool Simulator::step() {
  if (engine_ != nullptr) return engine_->step();
  if (queue_.empty()) return false;
  auto fired = queue_.pop();
  now_ = fired.time;
  ++processed_;
  fired.fn();
  return true;
}

}  // namespace rasc::sim
