// Simulated time.
//
// All simulator timestamps are integral microseconds. Integral time makes
// event ordering exact and runs bit-reproducible across platforms (no FP
// accumulation drift over millions of events).
#pragma once

#include <cstdint>

namespace rasc::sim {

/// Simulated time in microseconds since simulation start.
using SimTime = std::int64_t;

/// A duration in microseconds.
using SimDuration = std::int64_t;

constexpr SimDuration usec(std::int64_t n) { return n; }
constexpr SimDuration msec(std::int64_t n) { return n * 1000; }
constexpr SimDuration sec(std::int64_t n) { return n * 1'000'000; }

/// Fractional-second duration, rounded to the nearest microsecond.
constexpr SimDuration from_seconds(double s) {
  return SimDuration(s * 1e6 + (s >= 0 ? 0.5 : -0.5));
}

constexpr double to_ms(SimTime t) { return double(t) / 1000.0; }
constexpr double to_seconds(SimTime t) { return double(t) / 1e6; }

}  // namespace rasc::sim
