// Message and packet types exchanged over the simulated network.
//
// Payloads are immutable and shared: a packet "on the wire" carries a
// shared_ptr<const Message>, so forwarding never copies payload bytes and a
// handler can never mutate a message another node still holds.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "obs/unit_trace.hpp"
#include "sim/time.hpp"

namespace rasc::sim {

/// Index of a node in the topology (dense, 0-based).
using NodeIndex = std::int32_t;
constexpr NodeIndex kInvalidNode = -1;

/// Base class for all application-level messages (overlay control traffic,
/// stats queries, stream data units, ...).
struct Message {
  virtual ~Message() = default;
  /// Human-readable message kind, for logging and tests.
  virtual const char* kind() const = 0;
  /// Lifecycle-trace identity for payloads that are stream data units;
  /// nullopt for control traffic. Lets the network attribute port drops
  /// and node-failure losses to the exact unit without knowing the
  /// runtime's types.
  virtual std::optional<obs::UnitId> unit_id() const { return std::nullopt; }
};

using MessagePtr = std::shared_ptr<const Message>;

/// A framed packet in flight.
struct Packet {
  NodeIndex src = kInvalidNode;
  NodeIndex dst = kInvalidNode;
  std::int64_t size_bytes = 0;
  MessagePtr payload;
  SimTime sent_at = 0;  // time send() was called
};

}  // namespace rasc::sim
