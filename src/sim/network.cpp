#include "sim/network.hpp"

#include <cassert>
#include <cmath>

#include "util/logging.hpp"

namespace rasc::sim {

Network::Network(Simulator& simulator, Topology topology)
    : simulator_(simulator),
      topology_(std::move(topology)),
      handlers_(topology_.size()),
      drop_handlers_(topology_.size()),
      out_free_at_(topology_.size(), 0),
      in_free_at_(topology_.size(), 0),
      bytes_sent_(topology_.size(), 0),
      bytes_received_(topology_.size(), 0),
      received_by_kind_(topology_.size()),
      sent_by_kind_(topology_.size()),
      out_queue_drops_(topology_.size(), 0),
      in_queue_drops_(topology_.size(), 0),
      up_(topology_.size(), true),
      loss_rng_(simulator.rng().split(0x6e657477 /* "netw" */)) {}

void Network::set_handler(NodeIndex node, Handler handler) {
  handlers_.at(std::size_t(node)) = std::move(handler);
}

void Network::set_node_up(NodeIndex node, bool up) {
  up_.at(std::size_t(node)) = up;
}

void Network::set_drop_handler(NodeIndex node, DropHandler handler) {
  drop_handlers_.at(std::size_t(node)) = std::move(handler);
}

void Network::notify_drop(NodeIndex node, const Packet& packet,
                          bool outgoing) {
  ++packets_dropped_;
  auto& counter = outgoing ? out_queue_drops_ : in_queue_drops_;
  ++counter[std::size_t(node)];
  const auto& handler = drop_handlers_[std::size_t(node)];
  if (handler) handler(packet, outgoing);
}

SimDuration Network::serialization_time(std::int64_t size_bytes,
                                        double kbps) {
  assert(kbps > 0);
  // bits / (kbps * 1000 bits/s), in microseconds: bytes*8000/kbps.
  return SimDuration(std::ceil(double(size_bytes) * 8000.0 / kbps));
}

void Network::send(NodeIndex src, NodeIndex dst, std::int64_t size_bytes,
                   MessagePtr payload) {
  assert(src >= 0 && std::size_t(src) < size());
  assert(dst >= 0 && std::size_t(dst) < size());
  Packet packet;
  packet.src = src;
  packet.dst = dst;
  packet.size_bytes = size_bytes;
  packet.payload = std::move(payload);
  packet.sent_at = simulator_.now();
  ++packets_sent_;

  if (!up_[std::size_t(src)] || !up_[std::size_t(dst)]) {
    ++packets_dropped_;
    return;
  }

  if (src == dst) {
    simulator_.call_after(kLoopbackDelay,
                          [this, p = std::move(packet)] { deliver(p); });
    return;
  }

  const std::int64_t wire_bytes = size_bytes + kFrameOverheadBytes;

  // Output-port FIFO with tail drop: refuse the packet when the queue
  // already represents more than max_port_backlog of serialization time.
  const double bw_out = topology_.nodes[std::size_t(src)].bw_out_kbps;
  const SimTime start =
      std::max(simulator_.now(), out_free_at_[std::size_t(src)]);
  if (start - simulator_.now() > topology_.max_port_backlog) {
    notify_drop(src, packet, /*outgoing=*/true);
    return;
  }
  bytes_sent_[std::size_t(src)] += wire_bytes;
  sent_by_kind_[std::size_t(src)]
              [packet.payload ? packet.payload->kind() : "null"] +=
      wire_bytes;
  const SimTime departed = start + serialization_time(wire_bytes, bw_out);
  out_free_at_[std::size_t(src)] = departed;

  SimDuration latency =
      topology_.latency_us[std::size_t(src)][std::size_t(dst)];
  if (topology_.latency_jitter > 0) {
    latency = SimDuration(double(latency) *
                          loss_rng_.uniform_double(
                              1.0 - topology_.latency_jitter,
                              1.0 + topology_.latency_jitter));
  }
  const SimTime arrival = departed + latency;
  simulator_.call_at(arrival,
                     [this, p = std::move(packet)]() mutable {
                       arrive(std::move(p));
                     });
}

void Network::arrive(Packet packet) {
  if (!up_[std::size_t(packet.dst)]) {
    ++packets_dropped_;
    return;
  }
  if (topology_.loss_rate > 0 && loss_rng_.bernoulli(topology_.loss_rate)) {
    ++packets_dropped_;
    return;
  }
  // Input-port serialization, contended in true arrival order because this
  // runs at the propagation-arrival event. Tail drop when the receive
  // queue is over budget.
  const std::int64_t wire_bytes = packet.size_bytes + kFrameOverheadBytes;
  const double bw_in = topology_.nodes[std::size_t(packet.dst)].bw_in_kbps;
  const SimTime start =
      std::max(simulator_.now(), in_free_at_[std::size_t(packet.dst)]);
  if (start - simulator_.now() > topology_.max_port_backlog) {
    notify_drop(packet.dst, packet, /*outgoing=*/false);
    return;
  }
  const SimTime done = start + serialization_time(wire_bytes, bw_in);
  in_free_at_[std::size_t(packet.dst)] = done;
  simulator_.call_at(done, [this, p = std::move(packet)] { deliver(p); });
}

void Network::deliver(const Packet& packet) {
  if (!up_[std::size_t(packet.dst)]) {
    ++packets_dropped_;
    return;
  }
  // Loopback traffic never touches the access link: it must not count
  // toward measured bandwidth use, or co-located pipeline stages would
  // look like congestion to the monitor.
  if (packet.src != packet.dst) {
    bytes_received_[std::size_t(packet.dst)] +=
        packet.size_bytes + kFrameOverheadBytes;
    received_by_kind_[std::size_t(packet.dst)]
                     [packet.payload ? packet.payload->kind() : "null"] +=
        packet.size_bytes + kFrameOverheadBytes;
  }
  const auto& handler = handlers_[std::size_t(packet.dst)];
  if (handler) {
    handler(packet);
  } else {
    RASC_LOG(kWarn) << "packet to node " << packet.dst
                    << " dropped: no handler (kind="
                    << (packet.payload ? packet.payload->kind() : "null")
                    << ")";
    ++packets_dropped_;
  }
}

}  // namespace rasc::sim
