#include "sim/network.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "util/logging.hpp"

namespace rasc::sim {

namespace {

obs::Labels node_labels(std::size_t node) {
  obs::Labels labels;
  labels.node = std::int32_t(node);
  return labels;
}

// Chaos re-entry guard for send(): delayed/duplicated copies skip the
// interceptor. thread_local because the copy re-enters send() on whichever
// worker runs the source node's LP; a shared member would race and a
// per-instance flag could leak across LPs sharing a thread.
thread_local int tl_intercept_depth = 0;

}  // namespace

Network::Network(Simulator& simulator, Topology topology,
                 obs::MetricRegistry* registry, obs::UnitTrace* trace)
    : simulator_(simulator),
      topology_(std::move(topology)),
      owned_registry_(registry ? nullptr
                               : std::make_unique<obs::MetricRegistry>()),
      registry_(registry ? registry : owned_registry_.get()),
      trace_(trace),
      handlers_(topology_.size()),
      drop_handlers_(topology_.size()),
      out_free_at_(topology_.size(), 0),
      in_free_at_(topology_.size(), 0),
      sent_by_kind_(topology_.size()),
      received_by_kind_(topology_.size()),
      up_(topology_.size(), true),
      loss_rng_(simulator.rng().split(0x6e657477 /* "netw" */)),
      bw_scale_(topology_.size(), 1.0),
      extra_latency_(topology_.size(), 0),
      injected_loss_(topology_.size(), 0.0) {
  const std::size_t n = topology_.size();
  bytes_sent_.reserve(n);
  bytes_received_.reserve(n);
  out_queue_drops_.reserve(n);
  in_queue_drops_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    bytes_sent_.push_back(&registry_->counter("net.bytes_sent",
                                              node_labels(i)));
    bytes_received_.push_back(
        &registry_->counter("net.bytes_received", node_labels(i)));
    out_queue_drops_.push_back(
        &registry_->counter("net.port_drops_out", node_labels(i)));
    in_queue_drops_.push_back(
        &registry_->counter("net.port_drops_in", node_labels(i)));
  }
  packets_sent_ = &registry_->counter("net.packets_sent");
  packets_dropped_ = &registry_->counter("net.packets_dropped");
  // Pre-size the per-kind columns: parallel LPs index them concurrently,
  // so they must never reallocate. Null slots mean "kind not interned yet".
  for (std::size_t i = 0; i < n; ++i) {
    sent_by_kind_[i].assign(kMaxKinds, nullptr);
    received_by_kind_[i].assign(kMaxKinds, nullptr);
  }
  if (simulator_.parallel()) {
    // One derived stream per node so LPs never contend on loss_rng_. The
    // splits read from a copy: loss_rng_ itself keeps the exact state a
    // serial run would have, and parallel worlds stay comparable.
    auto base = loss_rng_;
    lp_rngs_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) lp_rngs_.push_back(base.split(i + 1));
  }
}

void Network::set_handler(NodeIndex node, Handler handler) {
  handlers_.at(std::size_t(node)) = std::move(handler);
}

void Network::set_node_up(NodeIndex node, bool up) {
  up_.at(std::size_t(node)) = up;
}

void Network::set_drop_handler(NodeIndex node, DropHandler handler) {
  drop_handlers_.at(std::size_t(node)) = std::move(handler);
}

void Network::fail_node(NodeIndex node) {
  auto up = up_.at(std::size_t(node));
  if (!up) return;
  up_[std::size_t(node)] = false;
  registry_->counter("net.node_failures", node_labels(std::size_t(node)))
      .add();
}

void Network::restore_node(NodeIndex node) {
  auto up = up_.at(std::size_t(node));
  if (up) return;
  up_[std::size_t(node)] = true;
  // The restarted node's port queues are empty: packets that were mid-
  // serialization at failure time are gone, not waiting.
  out_free_at_[std::size_t(node)] = simulator_.now();
  in_free_at_[std::size_t(node)] = simulator_.now();
  registry_->counter("net.node_restores", node_labels(std::size_t(node)))
      .add();
}

std::int64_t Network::node_failures(NodeIndex node) const {
  const auto* c = registry_->find_counter("net.node_failures",
                                          node_labels(std::size_t(node)));
  return c ? c->value() : 0;
}

std::int64_t Network::node_restores(NodeIndex node) const {
  const auto* c = registry_->find_counter("net.node_restores",
                                          node_labels(std::size_t(node)));
  return c ? c->value() : 0;
}

void Network::set_bandwidth_scale(NodeIndex node, double scale) {
  bw_scale_.at(std::size_t(node)) = scale < 0.001 ? 0.001 : scale;
}

void Network::set_extra_latency(NodeIndex node, SimDuration extra) {
  extra_latency_.at(std::size_t(node)) = extra < 0 ? 0 : extra;
}

void Network::set_injected_loss(NodeIndex node, double rate) {
  injected_loss_.at(std::size_t(node)) =
      rate < 0 ? 0 : (rate > 1 ? 1.0 : rate);
}

void Network::set_send_interceptor(SendInterceptor interceptor) {
  send_interceptor_ = std::move(interceptor);
}

Network::KindId Network::kind_id(const Message* payload) {
  static const char* const kNullKind = "null";
  const char* kind = payload ? payload->kind() : kNullKind;

  // Hot path: lock-free probe of the fixed pointer table. The key is
  // release-published only after the id and every per-node counter column
  // entry are in place, so an acquire hit may use the id immediately.
  const auto hash = std::hash<const char*>{}(kind);
  for (std::size_t i = 0; i < kKindTableSize; ++i) {
    auto& slot = kind_table_[(hash + i) & (kKindTableSize - 1)];
    const char* key = slot.key.load(std::memory_order_acquire);
    if (key == kind) return slot.id.load(std::memory_order_relaxed);
    if (key == nullptr) break;
  }

  // Slow path: intern under the lock. Another thread may have interned the
  // same kind (or the same string via a different literal) meanwhile, so
  // re-check the by-content map first.
  std::lock_guard<std::mutex> lk(kind_mu_);
  const auto [it, inserted] =
      kind_ids_.emplace(kind, KindId(kind_names_.size()));
  if (inserted) {
    if (kind_names_.size() >= kMaxKinds) {
      throw std::length_error("Network: more than kMaxKinds message kinds");
    }
    // New kind: fill one counter column slot per node. Columns are
    // pre-sized, so concurrent readers of *other* kinds see no resize.
    kind_names_.emplace_back(kind);
    for (std::size_t n = 0; n < topology_.size(); ++n) {
      obs::Labels labels = node_labels(n);
      labels.component = kind;
      sent_by_kind_[n][it->second] =
          &registry_->counter("net.sent_bytes_by_kind", labels);
      received_by_kind_[n][it->second] =
          &registry_->counter("net.received_bytes_by_kind", labels);
    }
  }
  // Publish the pointer->id mapping: claim the first free slot in the
  // probe sequence (id first, key last with release). A full table is not
  // an error — later calls just keep taking the slow path.
  for (std::size_t i = 0; i < kKindTableSize; ++i) {
    auto& slot = kind_table_[(hash + i) & (kKindTableSize - 1)];
    const char* key = slot.key.load(std::memory_order_relaxed);
    if (key == kind) break;  // another call site published it already
    if (key == nullptr) {
      slot.id.store(it->second, std::memory_order_relaxed);
      slot.key.store(kind, std::memory_order_release);
      break;
    }
  }
  return it->second;
}

std::int64_t Network::received_bytes_of_kind(NodeIndex node,
                                             KindId kind) const {
  const auto& column = received_by_kind_[std::size_t(node)];
  return kind < column.size() && column[kind] ? column[kind]->value() : 0;
}

std::int64_t Network::sent_bytes_of_kind(NodeIndex node, KindId kind) const {
  const auto& column = sent_by_kind_[std::size_t(node)];
  return kind < column.size() && column[kind] ? column[kind]->value() : 0;
}

std::map<std::string, std::int64_t> Network::received_by_kind(
    NodeIndex node) const {
  std::map<std::string, std::int64_t> view;
  const auto& column = received_by_kind_[std::size_t(node)];
  std::lock_guard<std::mutex> lk(kind_mu_);
  for (std::size_t k = 0; k < kind_names_.size(); ++k) {
    if (column[k] && column[k]->value() > 0) {
      view[kind_names_[k]] = column[k]->value();
    }
  }
  return view;
}

std::map<std::string, std::int64_t> Network::sent_by_kind(
    NodeIndex node) const {
  std::map<std::string, std::int64_t> view;
  const auto& column = sent_by_kind_[std::size_t(node)];
  std::lock_guard<std::mutex> lk(kind_mu_);
  for (std::size_t k = 0; k < kind_names_.size(); ++k) {
    if (column[k] && column[k]->value() > 0) {
      view[kind_names_[k]] = column[k]->value();
    }
  }
  return view;
}

void Network::count_lost(const Packet& packet, obs::DropReason reason) {
  packets_dropped_->add();
#if RASC_OBS_TRACING
  if (trace_ && trace_->enabled() && packet.payload) {
    if (const auto id = packet.payload->unit_id()) {
      const NodeIndex at = reason == obs::DropReason::kPortTailDrop
                               ? packet.src
                               : packet.dst;
      trace_->record(*id, obs::Hop::kDropped, at, simulator_.now(), reason);
    }
  }
#else
  (void)packet;
  (void)reason;
#endif
}

void Network::notify_drop(NodeIndex node, const Packet& packet,
                          bool outgoing) {
  packets_dropped_->add();
  auto& counter = outgoing ? out_queue_drops_ : in_queue_drops_;
  counter[std::size_t(node)]->add();
#if RASC_OBS_TRACING
  if (trace_ && trace_->enabled() && packet.payload) {
    if (const auto id = packet.payload->unit_id()) {
      trace_->record(*id, obs::Hop::kDropped, node, simulator_.now(),
                     obs::DropReason::kPortTailDrop);
    }
  }
#endif
  const auto& handler = drop_handlers_[std::size_t(node)];
  if (handler) handler(packet, outgoing);
}

SimDuration Network::serialization_time(std::int64_t size_bytes,
                                        double kbps) {
  assert(kbps > 0);
  // bits / (kbps * 1000 bits/s), in microseconds: bytes*8000/kbps.
  return SimDuration(std::ceil(double(size_bytes) * 8000.0 / kbps));
}

void Network::send(NodeIndex src, NodeIndex dst, std::int64_t size_bytes,
                   MessagePtr payload) {
  assert(src >= 0 && std::size_t(src) < size());
  assert(dst >= 0 && std::size_t(dst) < size());

  // Chaos interception happens before any accounting so a delayed packet
  // is counted once, when it actually enters the port queue. Copies it
  // spawns re-enter send() with the depth guard up and are not
  // re-intercepted.
  if (send_interceptor_ && tl_intercept_depth == 0) {
    const SendPerturbation p = send_interceptor_(src, dst, payload.get());
    for (int i = 0; i < p.duplicates; ++i) {
      MessagePtr copy = payload;
      simulator_.call_after(0, [this, src, dst, size_bytes,
                                c = std::move(copy)]() mutable {
        ++tl_intercept_depth;
        send(src, dst, size_bytes, std::move(c));
        --tl_intercept_depth;
      });
    }
    if (p.drop) {
      Packet lost;
      lost.src = src;
      lost.dst = dst;
      lost.size_bytes = size_bytes;
      lost.payload = std::move(payload);
      lost.sent_at = simulator_.now();
      packets_sent_->add();
      count_lost(lost, obs::DropReason::kLinkLoss);
      return;
    }
    if (p.extra_delay > 0) {
      simulator_.call_after(p.extra_delay, [this, src, dst, size_bytes,
                                            pl = std::move(payload)]() mutable {
        ++tl_intercept_depth;
        send(src, dst, size_bytes, std::move(pl));
        --tl_intercept_depth;
      });
      return;
    }
  }

  Packet packet;
  packet.src = src;
  packet.dst = dst;
  packet.size_bytes = size_bytes;
  packet.payload = std::move(payload);
  packet.sent_at = simulator_.now();
  packets_sent_->add();

  if (!up_[std::size_t(src)] || !up_[std::size_t(dst)]) {
    count_lost(packet, obs::DropReason::kNodeFailed);
    return;
  }

  if (src == dst) {
    simulator_.call_after(kLoopbackDelay,
                          [this, p = std::move(packet)] { deliver(p); });
    return;
  }

  const std::int64_t wire_bytes = size_bytes + kFrameOverheadBytes;

  // Output-port FIFO with tail drop: refuse the packet when the queue
  // already represents more than max_port_backlog of serialization time.
  const double bw_out = topology_.nodes[std::size_t(src)].bw_out_kbps *
                        bw_scale_[std::size_t(src)];
  const SimTime start =
      std::max(simulator_.now(), out_free_at_[std::size_t(src)]);
  if (start - simulator_.now() > topology_.max_port_backlog) {
    notify_drop(src, packet, /*outgoing=*/true);
    return;
  }
  bytes_sent_[std::size_t(src)]->add(wire_bytes);
  const KindId kind = kind_id(packet.payload.get());
  sent_by_kind_[std::size_t(src)][kind]->add(wire_bytes);
#if RASC_OBS_TRACING
  if (trace_ && trace_->enabled() && packet.payload) {
    if (const auto id = packet.payload->unit_id()) {
      trace_->record(*id, obs::Hop::kPortQueued, src, simulator_.now());
    }
  }
#endif
  const SimTime departed = start + serialization_time(wire_bytes, bw_out);
  out_free_at_[std::size_t(src)] = departed;

  SimDuration latency =
      topology_.latency_us[std::size_t(src)][std::size_t(dst)] +
      extra_latency_[std::size_t(src)] + extra_latency_[std::size_t(dst)];
  if (topology_.latency_jitter > 0) {
    // Jitter is drawn from the *sender's* stream (send runs on LP(src)).
    // The draw is >= the (1 - jitter) factor exactly, so the arrival can
    // never undercut the topology's conservative_lookahead bound.
    latency = SimDuration(double(latency) *
                          rng_for(src).uniform_double(
                              1.0 - topology_.latency_jitter,
                              1.0 + topology_.latency_jitter));
  }
  const SimTime arrival = departed + latency;
  // The arrival event belongs to the destination's LP: in parallel mode
  // this crosses LPs through the inbox protocol, in serial mode it is a
  // plain call_at.
  simulator_.call_at_on(std::size_t(dst), arrival,
                        [this, p = std::move(packet)]() mutable {
                          arrive(std::move(p));
                        });
}

void Network::arrive(Packet packet) {
  if (!up_[std::size_t(packet.dst)]) {
    count_lost(packet, obs::DropReason::kNodeFailed);
    return;
  }
  // Wire loss: topology-wide rate, combined with any chaos-injected loss
  // at the destination. The combine happens only when injection is
  // active so a chaos-free run draws the exact same RNG sequence.
  double loss_rate = topology_.loss_rate;
  const double injected = injected_loss_[std::size_t(packet.dst)];
  if (injected > 0) {
    loss_rate = 1.0 - (1.0 - loss_rate) * (1.0 - injected);
  }
  // The loss draw comes from the destination's stream: arrive() runs on
  // LP(dst), and keeping the draw there makes the sequence deterministic
  // per node regardless of which senders' packets interleave.
  if (loss_rate > 0 && rng_for(packet.dst).bernoulli(loss_rate)) {
    count_lost(packet, obs::DropReason::kLinkLoss);
    return;
  }
  // Input-port serialization, contended in true arrival order because this
  // runs at the propagation-arrival event. Tail drop when the receive
  // queue is over budget.
  const std::int64_t wire_bytes = packet.size_bytes + kFrameOverheadBytes;
  const double bw_in = topology_.nodes[std::size_t(packet.dst)].bw_in_kbps *
                       bw_scale_[std::size_t(packet.dst)];
  const SimTime start =
      std::max(simulator_.now(), in_free_at_[std::size_t(packet.dst)]);
  if (start - simulator_.now() > topology_.max_port_backlog) {
    notify_drop(packet.dst, packet, /*outgoing=*/false);
    return;
  }
  const SimTime done = start + serialization_time(wire_bytes, bw_in);
  in_free_at_[std::size_t(packet.dst)] = done;
  simulator_.call_at(done, [this, p = std::move(packet)] { deliver(p); });
}

void Network::deliver(const Packet& packet) {
  if (!up_[std::size_t(packet.dst)]) {
    count_lost(packet, obs::DropReason::kNodeFailed);
    return;
  }
  // Loopback traffic never touches the access link: it must not count
  // toward measured bandwidth use, or co-located pipeline stages would
  // look like congestion to the monitor.
  if (packet.src != packet.dst) {
    const std::int64_t wire_bytes =
        packet.size_bytes + kFrameOverheadBytes;
    bytes_received_[std::size_t(packet.dst)]->add(wire_bytes);
    const KindId kind = kind_id(packet.payload.get());
    received_by_kind_[std::size_t(packet.dst)][kind]->add(wire_bytes);
  }
  const auto& handler = handlers_[std::size_t(packet.dst)];
  if (handler) {
    handler(packet);
  } else {
    RASC_LOG(kWarn) << "packet to node " << packet.dst
                    << " dropped: no handler (kind="
                    << (packet.payload ? packet.payload->kind() : "null")
                    << ")";
    count_lost(packet, obs::DropReason::kUnroutable);
  }
}

}  // namespace rasc::sim
