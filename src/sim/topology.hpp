// Network topologies: per-node access bandwidth plus all-pairs propagation
// latency.
//
// This is the PlanetLab substitute. RASC's constraining resources are each
// node's input and output access bandwidth (paper §3.2: A_n = [b_in,
// b_out]); the wide-area core is modelled as latency-only, which matches
// how PlanetLab slices are usually bottlenecked at the site access link.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"
#include "util/rng.hpp"

namespace rasc::sim {

struct NodeCapacity {
  double bw_in_kbps = 0;   // access-link download capacity
  double bw_out_kbps = 0;  // access-link upload capacity
};

struct Topology {
  std::vector<NodeCapacity> nodes;
  /// latency_us[i][j]: one-way propagation delay i -> j. Symmetric in the
  /// provided generators, but the model does not require it.
  std::vector<std::vector<SimDuration>> latency_us;
  /// Independent per-packet loss probability (0 by default; drops in RASC
  /// come from deadline misses, not the wire).
  double loss_rate = 0.0;
  /// Maximum time a packet may wait in an access-link port queue before
  /// tail drop. Bounded queues are what turn persistent overload into
  /// packet loss (and hence into the drop-ratio feedback RASC relies on)
  /// instead of unbounded silent delay.
  SimDuration max_port_backlog = msec(400);
  /// Per-packet propagation jitter: each packet's latency is scaled by a
  /// uniform factor in [1-j, 1+j]. WAN paths reorder packets when queueing
  /// compresses inter-packet gaps below the jitter magnitude — the
  /// mechanism behind the paper's out-of-order deliveries (§4.2).
  double latency_jitter = 0.0;

  std::size_t size() const { return nodes.size(); }
};

/// Homogeneous topology: every node has the same capacity, every pair the
/// same latency. Useful for unit tests with hand-computable numbers.
Topology make_uniform_topology(std::size_t n, double bw_kbps,
                               SimDuration latency);

/// Parameters for the PlanetLab-like generator.
struct PlanetLabParams {
  double bw_min_kbps = 1000;   // slices are bandwidth-capped
  double bw_max_kbps = 4000;
  SimDuration latency_min = msec(10);
  SimDuration latency_max = msec(200);
  /// Pareto shape for latency skew (smaller = heavier tail). Latencies are
  /// sampled from a clipped Pareto so most pairs are near, some are far —
  /// the shape seen in PlanetLab all-pairs ping datasets.
  double latency_pareto_shape = 1.6;
  /// Per-packet latency jitter fraction (see Topology::latency_jitter).
  double latency_jitter = 0.25;
};

/// Heterogeneous WAN topology with skewed latencies and per-node asymmetric
/// bandwidth, deterministically derived from `rng`.
Topology make_planetlab_like(std::size_t n, util::Xoshiro256& rng,
                             const PlanetLabParams& params = {});

/// Node indices ordered by ascending min(bw_in, bw_out), ties broken by
/// index. Chaos scenarios use this to aim at the bottleneck access links
/// deterministically ("flap the weakest link", "overload the k weakest").
std::vector<std::size_t> nodes_by_ascending_bandwidth(const Topology& t);

/// Conservative PDES lookahead for this topology: a lower bound (floored
/// at 1us) on the propagation delay of any cross-node packet, i.e. the
/// minimum off-diagonal latency scaled by the worst-case jitter factor
/// (1 - latency_jitter). Chaos faults only ever *add* latency, and output
/// serialization contributes a further >= 1us (ceil), so a packet sent at
/// time t is always delivered at or after t + lookahead.
SimDuration conservative_lookahead(const Topology& t);

}  // namespace rasc::sim
