#include "chaos/slo.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace rasc::chaos {

namespace {

double parse_bound(const std::string& key, const std::string& v) {
  try {
    return std::stod(v);
  } catch (const std::exception&) {
    throw std::invalid_argument("slo spec " + key + ": not a number: " + v);
  }
}

sim::SimDuration parse_slo_time(const std::string& key,
                                const std::string& v) {
  std::size_t suffix = 0;
  double value = 0;
  try {
    value = std::stod(v, &suffix);
  } catch (const std::exception&) {
    throw std::invalid_argument("slo spec " + key + ": bad time: " + v);
  }
  const std::string unit = v.substr(suffix);
  if (unit == "ms") return sim::from_seconds(value / 1000.0);
  if (unit == "s" || unit.empty()) return sim::from_seconds(value);
  throw std::invalid_argument("slo spec " + key + ": unknown unit: " + unit);
}

}  // namespace

SloSpec parse_slo(const std::string& spec) {
  SloSpec out;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    std::string key, value;
    bool ge = false;
    if (auto pos = item.find(">="); pos != std::string::npos) {
      key = item.substr(0, pos);
      value = item.substr(pos + 2);
      ge = true;
    } else if (pos = item.find("<="); pos != std::string::npos) {
      key = item.substr(0, pos);
      value = item.substr(pos + 2);
    } else if (pos = item.find('='); pos != std::string::npos) {
      key = item.substr(0, pos);
      value = item.substr(pos + 1);
    } else {
      throw std::invalid_argument("slo spec: expected key>=v, key<=v or "
                                  "key=v, got " + item);
    }
    if (key == "delivered" && ge) {
      out.delivered_floor = parse_bound(key, value);
    } else if (key == "timely" && ge) {
      out.timely_floor = parse_bound(key, value);
    } else if (key == "drops" && !ge) {
      out.drop_ceiling = parse_bound(key, value);
    } else if (key == "recovery" && !ge) {
      out.max_recovery = parse_slo_time(key, value);
    } else if (key == "recovery-fraction") {
      out.recovery_fraction = parse_bound(key, value);
    } else if (key == "sample-ms") {
      out.sample_period = parse_slo_time(key, value + "ms");
    } else {
      throw std::invalid_argument("slo spec: unknown or misdirected check: " +
                                  item);
    }
  }
  return out;
}

SloChecker::SloChecker(sim::Simulator& simulator,
                       const obs::MetricRegistry& registry, SloSpec spec)
    : simulator_(simulator), registry_(registry), spec_(std::move(spec)) {}

SloChecker::~SloChecker() {
  stopped_ = true;
  simulator_.cancel(sample_event_);
}

std::int64_t SloChecker::delivered_now() const {
  return registry_.counter_total("sink.delivered");
}

void SloChecker::start(sim::SimTime end) {
  end_ = end;
  last_delivered_ = delivered_now();
  sample_event_ =
      simulator_.call_after(spec_.sample_period, [this] { sample(); });
}

void SloChecker::note_fault(sim::SimTime at) {
  if (fault_at_ < 0) fault_at_ = at;
}

void SloChecker::sample() {
  if (stopped_) return;
  const std::int64_t delivered = delivered_now();
  const double rate = double(delivered - last_delivered_) /
                      sim::to_seconds(spec_.sample_period);
  last_delivered_ = delivered;
  samples_.emplace_back(simulator_.now(), rate);
  if (simulator_.now() + spec_.sample_period > end_) return;
  sample_event_ =
      simulator_.call_after(spec_.sample_period, [this] { sample(); });
}

SloChecker::Report SloChecker::finalize(
    const std::string& scenario_name) const {
  Report report;
  report.scenario = scenario_name;
  report.fault_at = fault_at_;

  const double emitted =
      double(registry_.counter_total("source.units_emitted"));
  const double delivered = double(registry_.counter_total("sink.delivered"));
  const double timely = double(registry_.counter_total("sink.timely"));
  const double drops =
      double(registry_.counter_total("runtime.drops_queue_full") +
             registry_.counter_total("runtime.drops_deadline") +
             registry_.counter_total("runtime.units_unroutable") +
             registry_.counter_total("net.port_drops_out") +
             registry_.counter_total("net.port_drops_in"));

  const auto push = [&report](const std::string& name, double value,
                              double bound, bool pass) {
    report.checks.push_back(Check{name, value, bound, pass});
    report.pass = report.pass && pass;
  };

  if (spec_.delivered_floor >= 0) {
    const double f = emitted > 0 ? delivered / emitted : 0;
    push("delivered_fraction", f, spec_.delivered_floor,
         f >= spec_.delivered_floor);
  }
  if (spec_.timely_floor >= 0) {
    const double f = delivered > 0 ? timely / delivered : 0;
    push("timely_fraction", f, spec_.timely_floor, f >= spec_.timely_floor);
  }
  if (spec_.drop_ceiling >= 0) {
    const double f = emitted > 0 ? drops / emitted : 0;
    push("drop_fraction", f, spec_.drop_ceiling, f <= spec_.drop_ceiling);
  }

  if (spec_.max_recovery > 0) {
    if (fault_at_ < 0) {
      // No fault was ever signalled: vacuously recovered at t=0.
      report.recovery_us = 0;
      push("recovery_seconds", 0, sim::to_seconds(spec_.max_recovery), true);
    } else {
      // Pre-fault baseline: mean rate over the samples before the fault.
      double baseline = 0;
      int baseline_n = 0;
      for (const auto& [t, rate] : samples_) {
        if (t <= fault_at_) {
          baseline += rate;
          ++baseline_n;
        }
      }
      if (baseline_n > 0) baseline /= baseline_n;
      report.prefault_rate = baseline;
      const double threshold = spec_.recovery_fraction * baseline;
      // First post-fault sample at/above threshold whose successor (when
      // one exists) also holds — a single lucky burst does not count.
      for (std::size_t i = 0; i < samples_.size(); ++i) {
        const auto& [t, rate] = samples_[i];
        if (t <= fault_at_ || rate < threshold) continue;
        if (i + 1 < samples_.size() && samples_[i + 1].second < threshold) {
          continue;
        }
        report.recovery_us = t - fault_at_;
        break;
      }
      const bool recovered =
          baseline_n > 0 && report.recovery_us >= 0 &&
          report.recovery_us <= spec_.max_recovery;
      push("recovery_seconds",
           report.recovery_us >= 0 ? sim::to_seconds(report.recovery_us)
                                   : -1,
           sim::to_seconds(spec_.max_recovery), recovered);
    }
  }
  return report;
}

std::string SloChecker::Report::summary() const {
  std::ostringstream os;
  os << (pass ? "PASS" : "FAIL") << " [" << scenario << "]";
  for (const auto& c : checks) {
    os << " " << c.name << "=" << c.value << (c.pass ? "(ok)" : "(VIOLATED)");
  }
  return os.str();
}

void SloChecker::write_report(const Report& report, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("slo: cannot write report: " + path);
  }
  out << "check,value,bound,pass\n";
  for (const auto& c : report.checks) {
    out << c.name << "," << c.value << "," << c.bound << ","
        << (c.pass ? 1 : 0) << "\n";
  }
  out << "scenario," << report.scenario << ",,\n";
  out << "fault_at_us," << report.fault_at << ",,\n";
  out << "recovery_us," << report.recovery_us << ",,\n";
  out << "overall,,," << (report.pass ? 1 : 0) << "\n";
}

}  // namespace rasc::chaos
