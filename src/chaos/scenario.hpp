// Declarative fault scenarios for the chaos engine.
//
// A Scenario is a small, serializable spec: a list of Fault entries, each
// describing *what* goes wrong (crash, bandwidth/latency degradation,
// injected wire loss, monitor blackout, control-plane delay/duplication),
// *where* (an explicit node, a seeded-random pick, or the k-th most
// bandwidth-starved access link), *when* (onset relative to arming, an
// optional duration after which the fault clears, and an optional
// repetition period for flapping/churn), and *how hard* (a kind-specific
// magnitude). The chaos::Injector expands a Scenario into a concrete,
// fully deterministic timeline at arm() time — all randomness (target
// picks) is drawn then, from a generator seeded only by Scenario::seed,
// so the same (scenario, seed) pair always yields the same fault
// timeline regardless of what the simulated system does.
//
// Scenarios come from three places: the built-in library
// (`make_scenario`), the compact flag DSL (`parse_scenario`, used by
// rasc_cli's --chaos-scenario), or hand-built structs in tests. The JSON
// form (`to_json`) is export-only: a diffable fixture of what a spec
// expanded to, not an input format.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/message.hpp"
#include "sim/time.hpp"

namespace rasc::chaos {

enum class FaultKind : std::uint8_t {
  kCrash,             // node down; restored after `duration` when > 0
  kRestore,           // explicit un-fail (churn scripts)
  kBandwidth,         // scale the access link to `magnitude` x nominal
  kLatency,           // add `magnitude` ms of one-way latency
  kLoss,              // independent arrival-loss probability `magnitude`
  kMonitorBlackout,   // freeze the node's resource monitor (stale stats)
  kControlDelay,      // delay control packets `magnitude` ms w.p. `probability`
  kControlDuplicate,  // duplicate control packets w.p. `probability`
  kControlLoss,       // drop *deploy-plane* control packets w.p. `probability`
};
inline constexpr std::size_t kFaultKindCount = 9;

const char* to_string(FaultKind kind);

enum class TargetKind : std::uint8_t {
  kExplicit,  // Target::node
  kRandom,    // uniform over the topology (injector RNG, drawn at arm())
  kLowestBw,  // Target::rank-th lowest min(bw_in, bw_out) access link
};

struct Target {
  TargetKind kind = TargetKind::kRandom;
  sim::NodeIndex node = sim::kInvalidNode;  // kExplicit
  int rank = 0;                             // kLowestBw
};

struct Fault {
  FaultKind kind = FaultKind::kCrash;
  Target target;
  /// Onset, relative to Injector::arm()'s start time.
  sim::SimTime at = 0;
  /// How long the fault holds before the injector clears it (restores the
  /// node / resets the scale). 0 = for the rest of the run.
  sim::SimDuration duration = 0;
  /// Kind-specific intensity: bandwidth scale factor, added latency in
  /// ms, loss probability, or control-delay in ms.
  double magnitude = 0;
  /// Per-packet probability for the control-plane kinds.
  double probability = 1.0;
  /// Number of distinct simultaneous targets (correlated failures).
  int count = 1;
  /// Repeat every `period` (0 = one-shot), `repeats` occurrences total.
  sim::SimDuration period = 0;
  int repeats = 1;
};

struct Scenario {
  std::string name = "none";
  /// Seeds the injector's target/packet RNG. Independent of the world
  /// seed: the same scenario hits the same victims in any world.
  std::uint64_t seed = 1;
  std::vector<Fault> faults;

  bool empty() const { return faults.empty(); }
};

/// Names of the built-in scenario library, in catalog order.
std::vector<std::string> scenario_names();

/// Returns a built-in scenario ("none", "single-crash", "multi-crash",
/// "churn", "flapping-link", "cascade", "monitor-blackout",
/// "control-jitter", "control-loss", "coordinator-crash"). Throws
/// std::invalid_argument for unknown names.
Scenario make_scenario(const std::string& name);

/// Parses the flag DSL: `name[:key=value,...]`. The name selects a
/// library scenario; keys override fields on *every* fault of it:
///   at, duration, period  — times ("8s", "500ms", "250us"; bare = s)
///   node                  — explicit target node index
///   count, repeats, rank  — integers
///   mag, prob             — doubles
///   seed                  — scenario seed
/// Examples: "single-crash:at=10s,node=3", "churn:period=4s,repeats=12".
/// Throws std::invalid_argument on unknown names/keys or bad values.
Scenario parse_scenario(const std::string& spec);

/// JSON rendering of the spec (export/diagnostics only).
std::string to_json(const Scenario& scenario);

}  // namespace rasc::chaos
