// Deterministic fault-injection engine.
//
// An Injector turns a declarative chaos::Scenario into concrete faults
// applied to one simulated deployment. The contract that makes chaos runs
// regression-testable:
//
//  1. Pre-expansion. arm() expands the scenario into a concrete timeline
//     (every repetition unrolled, every random target drawn) *before*
//     anything runs, using an RNG seeded only by Scenario::seed and the
//     topology. The same (scenario, seed) pair therefore produces the
//     same timeline in every run — the system under test cannot perturb
//     target choice, and the timeline can be exported and diffed.
//  2. Event-queue scheduling. Each timeline entry is an ordinary
//     sim::EventQueue event, so faults interleave with workload traffic
//     in a reproducible total order.
//  3. Isolation. The injector never touches the simulator's root RNG and
//     installs only the Network chaos hooks, which are exact no-ops while
//     unused — constructing no Injector leaves a run byte-identical to a
//     build without this subsystem.
//
// Per-packet randomness for the control-plane faults (delay/duplicate)
// comes from a child of the scenario RNG split *after* expansion, so the
// timeline and the packet perturbations are independent streams.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "chaos/scenario.hpp"
#include "obs/metric_registry.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace rasc::chaos {

/// Deployment-side reactions the injector cannot perform through the
/// Network alone. All optional.
struct Hooks {
  /// Applied right after a node is failed — e.g. purge the peer from
  /// every overlay routing table (the failure detector's role).
  std::function<void(sim::NodeIndex)> on_crash;
  /// Applied right after a node is restored.
  std::function<void(sim::NodeIndex)> on_restore;
  /// Freeze (true) / thaw (false) a node's resource monitor so its stats
  /// replies go stale without stopping.
  std::function<void(sim::NodeIndex, bool)> set_monitor_blackout;
  /// First disruptive fault onset (starts the SLO recovery clock).
  std::function<void(sim::SimTime)> on_first_fault;
};

class Injector {
 public:
  /// One planned (and, once fired, applied) action.
  struct TimelineEntry {
    sim::SimTime at = 0;  // absolute simulated time
    FaultKind kind = FaultKind::kCrash;
    bool onset = true;  // false = the matching clear/restore
    sim::NodeIndex node = sim::kInvalidNode;
    double magnitude = 0;
    double probability = 1.0;
  };

  /// `registry` receives chaos.* accounting (null: none kept beyond the
  /// timeline itself).
  Injector(sim::Simulator& simulator, sim::Network& network,
           Scenario scenario, Hooks hooks = {},
           obs::MetricRegistry* registry = nullptr);
  ~Injector();

  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;

  /// Expands the scenario over [start, end) and schedules every entry.
  /// Call exactly once. Entries whose onset falls at or past `end` are
  /// dropped; a clear that would land past `end` is dropped too (the run
  /// is over by then).
  void arm(sim::SimTime start, sim::SimTime end);

  const Scenario& scenario() const { return scenario_; }
  /// The full planned timeline, in firing order (valid after arm()).
  const std::vector<TimelineEntry>& timeline() const { return timeline_; }
  /// Entries actually applied so far.
  std::size_t applied() const { return applied_; }
  /// Onset time of the first applied disruptive fault; -1 if none yet.
  sim::SimTime first_fault_at() const { return first_fault_at_; }

  /// Timeline exports (deterministic ordering and formatting).
  void write_timeline_csv(const std::string& path) const;
  std::string timeline_json() const;

 private:
  void apply(std::size_t index);
  std::vector<sim::NodeIndex> pick_targets(const Fault& fault,
                                           util::Xoshiro256& rng) const;
  void update_interceptor();

  sim::Simulator& simulator_;
  sim::Network& network_;
  Scenario scenario_;
  Hooks hooks_;
  obs::MetricRegistry* registry_;

  std::vector<TimelineEntry> timeline_;
  std::vector<sim::EventId> scheduled_;
  std::size_t applied_ = 0;
  sim::SimTime first_fault_at_ = -1;
  bool armed_ = false;

  // Control-plane perturbation state (counts of active windows so
  // overlapping faults compose; the interceptor is installed only while
  // at least one window is active).
  int delay_windows_ = 0;
  int dup_windows_ = 0;
  int loss_windows_ = 0;
  double delay_ms_ = 0;
  double delay_prob_ = 0;
  double dup_prob_ = 0;
  double ctrl_loss_prob_ = 0;
  util::Xoshiro256 packet_rng_;
  /// Parallel simulation only: per-source-node children of packet_rng_
  /// (derived once in arm() from a copy, so packet_rng_ itself is
  /// untouched). The send interceptor runs on the sender's LP; striping
  /// the draws per src keeps them race-free and deterministic. Empty in
  /// serial mode, where packet_rng_ keeps its historical sequence.
  std::vector<util::Xoshiro256> packet_rngs_;

  obs::Counter* faults_applied_ = nullptr;
  obs::Counter* crashes_ = nullptr;
  obs::Counter* restores_ = nullptr;
};

}  // namespace rasc::chaos
