#include "chaos/scenario.hpp"

#include <cctype>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace rasc::chaos {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kRestore:
      return "restore";
    case FaultKind::kBandwidth:
      return "bandwidth";
    case FaultKind::kLatency:
      return "latency";
    case FaultKind::kLoss:
      return "loss";
    case FaultKind::kMonitorBlackout:
      return "monitor-blackout";
    case FaultKind::kControlDelay:
      return "control-delay";
    case FaultKind::kControlDuplicate:
      return "control-duplicate";
    case FaultKind::kControlLoss:
      return "control-loss";
  }
  return "?";
}

std::vector<std::string> scenario_names() {
  return {"none",          "single-crash", "multi-crash",
          "churn",         "flapping-link", "cascade",
          "monitor-blackout", "control-jitter", "load-drift",
          "control-loss",  "coordinator-crash", "shard-takeover"};
}

Scenario make_scenario(const std::string& name) {
  Scenario s;
  s.name = name;
  const auto lowest = [](int rank) {
    Target t;
    t.kind = TargetKind::kLowestBw;
    t.rank = rank;
    return t;
  };

  if (name == "none") {
    return s;
  }
  if (name == "single-crash") {
    // One random node dies mid-run and stays dead: the baseline recovery
    // drill (paper §1's "adjusts the rates" under a component-host loss).
    Fault f;
    f.kind = FaultKind::kCrash;
    f.at = sim::sec(10);
    s.faults.push_back(f);
    return s;
  }
  if (name == "multi-crash") {
    // Correlated failure: several nodes die at the same instant (rack /
    // site outage). `count` is the failure-scale knob the recovery-latency
    // experiment sweeps.
    Fault f;
    f.kind = FaultKind::kCrash;
    f.at = sim::sec(10);
    f.count = 3;
    s.faults.push_back(f);
    return s;
  }
  if (name == "churn") {
    // Rolling restarts: every period one random node is down for a few
    // seconds and then comes back. Exercises restore_node and the
    // composers' willingness to re-use returned capacity.
    Fault f;
    f.kind = FaultKind::kCrash;
    f.at = sim::sec(8);
    f.duration = sim::sec(3);
    f.period = sim::sec(6);
    f.repeats = 6;
    s.faults.push_back(f);
    return s;
  }
  if (name == "flapping-link") {
    // The most bandwidth-starved access link repeatedly collapses to a
    // quarter of its capacity and recovers: queueing drops come and go
    // faster than the monitor window fully turns over.
    Fault f;
    f.kind = FaultKind::kBandwidth;
    f.target = lowest(0);
    f.at = sim::sec(8);
    f.duration = sim::sec(2);
    f.magnitude = 0.25;
    f.period = sim::sec(4);
    f.repeats = 8;
    s.faults.push_back(f);
    return s;
  }
  if (name == "load-drift") {
    // Sustained capacity drift, not an outage: mid-run the two most
    // bandwidth-starved access links sag to a fraction of nominal and
    // stay there for most of the remaining stream. Components placed on
    // them keep shedding units at their admission-time rates — exactly
    // the regime in-place rate re-allocation is for. A delta replan
    // shifts the split onto healthy providers without a teardown; the
    // teardown-only baseline either recomposes from scratch or fails its
    // delivery SLO.
    Fault d0;
    d0.kind = FaultKind::kBandwidth;
    d0.target = lowest(0);
    d0.at = sim::sec(10);
    d0.duration = sim::sec(25);
    d0.magnitude = 0.35;
    s.faults.push_back(d0);
    Fault d1;
    d1.kind = FaultKind::kBandwidth;
    d1.target = lowest(1);
    d1.at = sim::sec(12);
    d1.duration = sim::sec(23);
    d1.magnitude = 0.45;
    s.faults.push_back(d1);
    return s;
  }
  if (name == "cascade") {
    // Cascading overload: the two weakest links degrade in sequence, then
    // the weakest node dies outright — load displaced by each stage makes
    // the next one worse.
    Fault d0;
    d0.kind = FaultKind::kBandwidth;
    d0.target = lowest(0);
    d0.at = sim::sec(8);
    d0.magnitude = 0.3;
    s.faults.push_back(d0);
    Fault d1;
    d1.kind = FaultKind::kBandwidth;
    d1.target = lowest(1);
    d1.at = sim::sec(14);
    d1.magnitude = 0.5;
    s.faults.push_back(d1);
    Fault crash;
    crash.kind = FaultKind::kCrash;
    crash.target = lowest(0);
    crash.at = sim::sec(20);
    s.faults.push_back(crash);
    return s;
  }
  if (name == "monitor-blackout") {
    // A third of the monitors stop folding in new samples for a stretch:
    // composition runs on stale statistics (the staleness regime the
    // paper's baselines suffered from).
    Fault f;
    f.kind = FaultKind::kMonitorBlackout;
    f.at = sim::sec(8);
    f.duration = sim::sec(12);
    f.count = 4;
    s.faults.push_back(f);
    return s;
  }
  if (name == "control-jitter") {
    // Control-plane trouble without data-plane damage: stats replies,
    // deployment messages and probes arrive late or twice.
    Fault delay;
    delay.kind = FaultKind::kControlDelay;
    delay.at = sim::sec(6);
    delay.duration = sim::sec(20);
    delay.magnitude = 80;  // ms
    delay.probability = 0.3;
    s.faults.push_back(delay);
    Fault dup;
    dup.kind = FaultKind::kControlDuplicate;
    dup.at = sim::sec(6);
    dup.duration = sim::sec(20);
    dup.probability = 0.15;
    s.faults.push_back(dup);
    return s;
  }
  if (name == "control-loss") {
    // Lossy deployment plane: deploy/teardown packets are independently
    // dropped for the whole run while data units, stats and probes pass
    // untouched. Isolates the deploy protocol: single-shot deployments
    // strand partial reservations and time out; the retransmitting
    // coordinator (DeployPolicy) still admits.
    Fault loss;
    loss.kind = FaultKind::kControlLoss;
    loss.at = sim::msec(500);
    loss.duration = 0;  // whole run
    loss.probability = 0.2;
    s.faults.push_back(loss);
    return s;
  }
  if (name == "coordinator-crash") {
    // The coordinator node dies shortly after submissions start, while
    // the control plane is already jittery: deployments it was driving
    // can never be acked or rolled back. Orphaned components/sinks on
    // surviving nodes are what the lease reaper must collect.
    Fault delay;
    delay.kind = FaultKind::kControlDelay;
    delay.at = sim::msec(500);
    delay.duration = 0;  // whole run
    delay.magnitude = 120;  // ms
    delay.probability = 0.5;
    s.faults.push_back(delay);
    Fault crash;
    crash.kind = FaultKind::kCrash;
    crash.at = sim::sec(2);
    s.faults.push_back(crash);
    return s;
  }
  if (name == "shard-takeover") {
    // Kill shard 0's home deterministically (node 0 under the plane's
    // s*N/K placement) once streams are established: the standby
    // re-homing drill. Override duration (e.g. duration=15s) to bring
    // the node back as a fenced zombie; node= moves the victim.
    Fault crash;
    crash.kind = FaultKind::kCrash;
    crash.target.kind = TargetKind::kExplicit;
    crash.target.node = 0;
    crash.at = sim::sec(8);
    s.faults.push_back(crash);
    return s;
  }
  throw std::invalid_argument("unknown chaos scenario: " + name);
}

namespace {

sim::SimDuration parse_time(const std::string& key, const std::string& v) {
  std::size_t suffix = 0;
  double value = 0;
  try {
    value = std::stod(v, &suffix);
  } catch (const std::exception&) {
    throw std::invalid_argument("chaos scenario key " + key +
                                ": bad time: " + v);
  }
  const std::string unit = v.substr(suffix);
  if (unit == "us") return sim::SimDuration(value);
  if (unit == "ms") return sim::from_seconds(value / 1000.0);
  if (unit == "s" || unit.empty()) return sim::from_seconds(value);
  throw std::invalid_argument("chaos scenario key " + key +
                              ": unknown time unit: " + unit);
}

double parse_num(const std::string& key, const std::string& v) {
  try {
    return std::stod(v);
  } catch (const std::exception&) {
    throw std::invalid_argument("chaos scenario key " + key +
                                ": not a number: " + v);
  }
}

}  // namespace

Scenario parse_scenario(const std::string& spec) {
  const auto colon = spec.find(':');
  Scenario s = make_scenario(spec.substr(0, colon));
  if (colon == std::string::npos) return s;

  std::stringstream ss(spec.substr(colon + 1));
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("chaos scenario: expected key=value, got " +
                                  item);
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "seed") {
      s.seed = std::uint64_t(parse_num(key, value));
      continue;
    }
    if (s.faults.empty()) {
      throw std::invalid_argument(
          "chaos scenario: cannot override fields of the empty scenario");
    }
    for (Fault& f : s.faults) {
      if (key == "at") {
        f.at = parse_time(key, value);
      } else if (key == "duration") {
        f.duration = parse_time(key, value);
      } else if (key == "period") {
        f.period = parse_time(key, value);
      } else if (key == "node") {
        f.target.kind = TargetKind::kExplicit;
        f.target.node = sim::NodeIndex(parse_num(key, value));
      } else if (key == "rank") {
        f.target.kind = TargetKind::kLowestBw;
        f.target.rank = int(parse_num(key, value));
      } else if (key == "count") {
        f.count = int(parse_num(key, value));
      } else if (key == "repeats") {
        f.repeats = int(parse_num(key, value));
      } else if (key == "mag") {
        f.magnitude = parse_num(key, value);
      } else if (key == "prob") {
        f.probability = parse_num(key, value);
      } else {
        throw std::invalid_argument("chaos scenario: unknown key: " + key);
      }
    }
  }
  return s;
}

std::string to_json(const Scenario& scenario) {
  std::ostringstream os;
  os << "{\"name\":\"" << scenario.name << "\",\"seed\":" << scenario.seed
     << ",\"faults\":[";
  for (std::size_t i = 0; i < scenario.faults.size(); ++i) {
    const Fault& f = scenario.faults[i];
    if (i) os << ",";
    os << "{\"kind\":\"" << to_string(f.kind) << "\",\"at_us\":" << f.at
       << ",\"duration_us\":" << f.duration << ",\"magnitude\":"
       << f.magnitude << ",\"probability\":" << f.probability
       << ",\"count\":" << f.count << ",\"period_us\":" << f.period
       << ",\"repeats\":" << f.repeats << ",\"target\":";
    switch (f.target.kind) {
      case TargetKind::kExplicit:
        os << "{\"node\":" << f.target.node << "}";
        break;
      case TargetKind::kRandom:
        os << "\"random\"";
        break;
      case TargetKind::kLowestBw:
        os << "{\"lowest_bw_rank\":" << f.target.rank << "}";
        break;
    }
    os << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace rasc::chaos
