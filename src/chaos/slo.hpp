// SLO verification for chaos runs.
//
// An SloChecker samples the deployment-wide obs::MetricRegistry on a
// fixed simulated-time period and, at the end of the run, turns the
// series into a pass/fail report:
//
//  - delivered floor:  sink.delivered / source.units_emitted  >= bound
//  - timely floor:     sink.timely   / sink.delivered         >= bound
//  - drop ceiling:     (scheduler + port + unroutable drops) / emitted <= bound
//  - recovery bound:   time from the first injected fault until the
//    windowed delivered rate climbs back to `recovery_fraction` x the
//    pre-fault rate (and stays there) <= bound
//
// The checker is observational: sampling reads counters and never
// schedules anything the system can observe, draws no randomness, and
// exists only when a spec is supplied — so a run without SLOs is
// event-for-event identical to one before this subsystem existed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metric_registry.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace rasc::chaos {

struct SloSpec {
  /// Floors/ceilings over the whole run; the negative defaults disable
  /// each check.
  double delivered_floor = -1;  // delivered fraction >=
  double timely_floor = -1;     // timely fraction of delivered >=
  double drop_ceiling = -1;     // dropped fraction of emitted <=
  /// Recovery-time bound; 0 disables the check.
  sim::SimDuration max_recovery = 0;
  /// "Recovered" = windowed delivered rate >= this fraction of the mean
  /// pre-fault rate, sustained to the end of the next sample too.
  double recovery_fraction = 0.5;
  sim::SimDuration sample_period = sim::msec(500);

  bool any() const {
    return delivered_floor >= 0 || timely_floor >= 0 || drop_ceiling >= 0 ||
           max_recovery > 0;
  }
};

/// Parses "delivered>=0.8,timely>=0.6,drops<=0.1,recovery<=10s"
/// (keys: delivered, timely, drops, recovery, recovery-fraction,
/// sample-ms; any subset). Throws std::invalid_argument on bad specs.
SloSpec parse_slo(const std::string& spec);

class SloChecker {
 public:
  struct Check {
    std::string name;
    double value = 0;
    double bound = 0;
    bool pass = true;
  };

  struct Report {
    std::string scenario;
    bool pass = true;
    sim::SimTime fault_at = -1;        // -1: no fault was signalled
    sim::SimDuration recovery_us = -1; // -1: never recovered / n.a.
    double prefault_rate = 0;          // delivered units/sec before fault
    std::vector<Check> checks;

    std::string summary() const;
  };

  SloChecker(sim::Simulator& simulator, const obs::MetricRegistry& registry,
             SloSpec spec);
  ~SloChecker();

  SloChecker(const SloChecker&) = delete;
  SloChecker& operator=(const SloChecker&) = delete;

  /// Starts periodic sampling until `end`.
  void start(sim::SimTime end);

  /// Marks the fault onset that starts the recovery clock (idempotent:
  /// the first call wins). Typically wired to Injector hooks.
  void note_fault(sim::SimTime at);

  /// Evaluates every enabled check against the sampled series and the
  /// registry's final counters.
  Report finalize(const std::string& scenario_name) const;

  /// Writes a report as CSV: one row per check plus recovery metadata.
  static void write_report(const Report& report, const std::string& path);

  /// (time, delivered-units/sec over the preceding period) samples.
  const std::vector<std::pair<sim::SimTime, double>>& samples() const {
    return samples_;
  }

 private:
  void sample();
  std::int64_t delivered_now() const;

  sim::Simulator& simulator_;
  const obs::MetricRegistry& registry_;
  SloSpec spec_;

  sim::SimTime end_ = 0;
  sim::EventId sample_event_ = 0;
  bool stopped_ = false;
  std::int64_t last_delivered_ = 0;
  sim::SimTime fault_at_ = -1;
  std::vector<std::pair<sim::SimTime, double>> samples_;
};

}  // namespace rasc::chaos
