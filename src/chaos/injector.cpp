#include "chaos/injector.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "util/logging.hpp"

namespace rasc::chaos {

namespace {

/// Does this fault kind, at onset, disturb the running system enough to
/// start the SLO recovery clock? (Everything except an explicit restore.)
bool disruptive(FaultKind kind) { return kind != FaultKind::kRestore; }

/// Does this kind have a meaningful clear action after `duration`?
bool clearable(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
    case FaultKind::kBandwidth:
    case FaultKind::kLatency:
    case FaultKind::kLoss:
    case FaultKind::kMonitorBlackout:
    case FaultKind::kControlDelay:
    case FaultKind::kControlDuplicate:
    case FaultKind::kControlLoss:
      return true;
    case FaultKind::kRestore:
      return false;
  }
  return false;
}

/// kControlLoss drops only the deployment plane (deploy/ack/teardown).
/// Stats queries have a hard phase timeout and no retry, so full
/// control-plane loss would reject requests before deployment even
/// starts — the scenario isolates the protocol under test instead.
bool deploy_plane(const sim::Message& payload) {
  const std::string_view kind = payload.kind();
  return kind.substr(0, 15) == "runtime.deploy_" ||
         kind == "runtime.teardown_app";
}

}  // namespace

Injector::Injector(sim::Simulator& simulator, sim::Network& network,
                   Scenario scenario, Hooks hooks,
                   obs::MetricRegistry* registry)
    : simulator_(simulator),
      network_(network),
      scenario_(std::move(scenario)),
      hooks_(std::move(hooks)),
      registry_(registry),
      packet_rng_(0) {
  if (registry_ != nullptr) {
    faults_applied_ = &registry_->counter("chaos.faults_applied");
    crashes_ = &registry_->counter("chaos.crashes");
    restores_ = &registry_->counter("chaos.restores");
  }
}

Injector::~Injector() {
  for (const auto id : scheduled_) simulator_.cancel(id);
  if (delay_windows_ > 0 || dup_windows_ > 0 || loss_windows_ > 0) {
    network_.set_send_interceptor(nullptr);
  }
}

std::vector<sim::NodeIndex> Injector::pick_targets(
    const Fault& fault, util::Xoshiro256& rng) const {
  const std::size_t n = network_.size();
  std::vector<sim::NodeIndex> targets;
  const int count = std::max(1, fault.count);
  switch (fault.target.kind) {
    case TargetKind::kExplicit: {
      if (fault.target.node < 0 || std::size_t(fault.target.node) >= n) {
        throw std::invalid_argument("chaos: explicit target node " +
                                    std::to_string(fault.target.node) +
                                    " outside topology");
      }
      targets.push_back(fault.target.node);
      break;
    }
    case TargetKind::kRandom: {
      // Distinct picks; counts beyond the topology are clamped.
      std::vector<sim::NodeIndex> all(n);
      for (std::size_t i = 0; i < n; ++i) all[i] = sim::NodeIndex(i);
      rng.shuffle(all);
      for (int k = 0; k < count && std::size_t(k) < n; ++k) {
        targets.push_back(all[std::size_t(k)]);
      }
      break;
    }
    case TargetKind::kLowestBw: {
      const auto order = sim::nodes_by_ascending_bandwidth(
          network_.topology());
      for (int k = 0; k < count; ++k) {
        const std::size_t rank = std::size_t(fault.target.rank + k);
        if (rank >= order.size()) break;
        targets.push_back(sim::NodeIndex(order[rank]));
      }
      break;
    }
  }
  return targets;
}

void Injector::arm(sim::SimTime start, sim::SimTime end) {
  if (armed_) throw std::logic_error("chaos::Injector::arm called twice");
  armed_ = true;

  // Expansion RNG: a pure function of the scenario seed. Target draws
  // happen here, in fault-list order, never during the run.
  util::Xoshiro256 rng(scenario_.seed ^ 0x63AA05C1D3E7F219ull);

  for (const Fault& fault : scenario_.faults) {
    const int reps = fault.period > 0 ? std::max(1, fault.repeats) : 1;
    for (int rep = 0; rep < reps; ++rep) {
      const sim::SimTime onset =
          start + fault.at + sim::SimDuration(rep) * fault.period;
      // Targets are re-drawn per repetition: churn hits a different
      // victim each round.
      const auto targets = pick_targets(fault, rng);
      if (onset >= end) continue;
      for (const auto node : targets) {
        TimelineEntry entry;
        entry.at = onset;
        entry.kind = fault.kind;
        entry.onset = true;
        entry.node = node;
        entry.magnitude = fault.magnitude;
        entry.probability = fault.probability;
        timeline_.push_back(entry);
        if (fault.duration > 0 && clearable(fault.kind) &&
            onset + fault.duration < end) {
          TimelineEntry clear = entry;
          clear.at = onset + fault.duration;
          clear.onset = false;
          timeline_.push_back(clear);
        }
      }
    }
  }

  // Firing order: by time, stable within a timestamp (insertion order is
  // the scenario's fault order — deterministic).
  std::stable_sort(timeline_.begin(), timeline_.end(),
                   [](const TimelineEntry& a, const TimelineEntry& b) {
                     return a.at < b.at;
                   });

  // Per-packet draws are a child stream so adding/removing timeline
  // entries never changes what a control-jitter window does to packets.
  packet_rng_ = rng.split(0x7061636b /* "pack" */);
  if (simulator_.parallel()) {
    // The interceptor fires on whichever LP owns the sending node, so
    // stripe the per-packet stream per source. Split from a copy:
    // packet_rng_'s own state stays what a serial run would have.
    auto base = packet_rng_;
    packet_rngs_.reserve(network_.size());
    for (std::size_t n = 0; n < network_.size(); ++n) {
      packet_rngs_.push_back(base.split(n + 1));
    }
  }

  scheduled_.reserve(timeline_.size());
  for (std::size_t i = 0; i < timeline_.size(); ++i) {
    scheduled_.push_back(
        simulator_.call_at(timeline_[i].at, [this, i] { apply(i); }));
  }
}

void Injector::update_interceptor() {
  if (delay_windows_ <= 0 && dup_windows_ <= 0 && loss_windows_ <= 0) {
    network_.set_send_interceptor(nullptr);
    return;
  }
  network_.set_send_interceptor(
      [this](sim::NodeIndex src, sim::NodeIndex, const sim::Message* payload)
          -> sim::Network::SendPerturbation {
        sim::Network::SendPerturbation p;
        // Data units carry a unit id; everything else is control plane.
        if (payload != nullptr && payload->unit_id().has_value()) return p;
        // Serial: the shared stream. Parallel: the sender's stripe (the
        // interceptor runs on LP(src)).
        auto& rng = packet_rngs_.empty() ? packet_rng_
                                         : packet_rngs_[std::size_t(src)];
        // Loss draws first: a dropped packet consumes no delay/dup draws,
        // so a loss window composes with jitter without reshuffling the
        // jitter stream for surviving packets of loss-free runs.
        if (loss_windows_ > 0 && ctrl_loss_prob_ > 0 && payload != nullptr &&
            deploy_plane(*payload) &&
            rng.bernoulli(ctrl_loss_prob_)) {
          p.drop = true;
          return p;
        }
        if (delay_windows_ > 0 && delay_prob_ > 0 &&
            rng.bernoulli(delay_prob_)) {
          p.extra_delay = sim::from_seconds(delay_ms_ / 1000.0);
        }
        if (dup_windows_ > 0 && dup_prob_ > 0 &&
            rng.bernoulli(dup_prob_)) {
          p.duplicates = 1;
        }
        return p;
      });
}

void Injector::apply(std::size_t index) {
  const TimelineEntry& e = timeline_[index];
  ++applied_;
  if (faults_applied_ != nullptr) faults_applied_->add();
  if (e.onset && disruptive(e.kind) && first_fault_at_ < 0) {
    first_fault_at_ = simulator_.now();
    if (hooks_.on_first_fault) hooks_.on_first_fault(first_fault_at_);
  }

  switch (e.kind) {
    case FaultKind::kCrash:
      if (e.onset) {
        if (network_.node_up(e.node)) {
          RASC_LOG(kInfo) << "chaos: crash node " << e.node;
          network_.fail_node(e.node);
          if (crashes_ != nullptr) crashes_->add();
          if (hooks_.on_crash) hooks_.on_crash(e.node);
        }
      } else if (!network_.node_up(e.node)) {
        RASC_LOG(kInfo) << "chaos: restart node " << e.node;
        network_.restore_node(e.node);
        if (restores_ != nullptr) restores_->add();
        if (hooks_.on_restore) hooks_.on_restore(e.node);
      }
      break;
    case FaultKind::kRestore:
      if (!network_.node_up(e.node)) {
        network_.restore_node(e.node);
        if (restores_ != nullptr) restores_->add();
        if (hooks_.on_restore) hooks_.on_restore(e.node);
      }
      break;
    case FaultKind::kBandwidth:
      network_.set_bandwidth_scale(e.node, e.onset ? e.magnitude : 1.0);
      break;
    case FaultKind::kLatency:
      network_.set_extra_latency(
          e.node, e.onset ? sim::from_seconds(e.magnitude / 1000.0) : 0);
      break;
    case FaultKind::kLoss:
      network_.set_injected_loss(e.node, e.onset ? e.magnitude : 0.0);
      break;
    case FaultKind::kMonitorBlackout:
      if (hooks_.set_monitor_blackout) {
        hooks_.set_monitor_blackout(e.node, e.onset);
      }
      break;
    case FaultKind::kControlDelay:
      delay_windows_ += e.onset ? 1 : -1;
      if (e.onset) {
        delay_ms_ = e.magnitude;
        delay_prob_ = e.probability;
      }
      update_interceptor();
      break;
    case FaultKind::kControlDuplicate:
      dup_windows_ += e.onset ? 1 : -1;
      if (e.onset) dup_prob_ = e.probability;
      update_interceptor();
      break;
    case FaultKind::kControlLoss:
      loss_windows_ += e.onset ? 1 : -1;
      if (e.onset) ctrl_loss_prob_ = e.probability;
      update_interceptor();
      break;
  }
}

void Injector::write_timeline_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("chaos: cannot write timeline: " + path);
  }
  out << "at_us,kind,phase,node,magnitude,probability\n";
  for (const auto& e : timeline_) {
    out << e.at << "," << to_string(e.kind) << ","
        << (e.onset ? "onset" : "clear") << "," << e.node << ","
        << e.magnitude << "," << e.probability << "\n";
  }
}

std::string Injector::timeline_json() const {
  std::ostringstream os;
  os << "{\"scenario\":\"" << scenario_.name
     << "\",\"seed\":" << scenario_.seed << ",\"entries\":[";
  for (std::size_t i = 0; i < timeline_.size(); ++i) {
    const auto& e = timeline_[i];
    if (i) os << ",";
    os << "{\"at_us\":" << e.at << ",\"kind\":\"" << to_string(e.kind)
       << "\",\"phase\":\"" << (e.onset ? "onset" : "clear")
       << "\",\"node\":" << e.node << ",\"magnitude\":" << e.magnitude
       << ",\"probability\":" << e.probability << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace rasc::chaos
