// Structural and optimality validation of a solved flow.
//
// Used by tests and (in debug builds) by the composer after every solve:
// conservation at every interior node, capacity bounds on every arc, and
// min-cost optimality via the absence of negative residual cycles.
#pragma once

#include <optional>
#include <string>

#include "flow/graph.hpp"

namespace rasc::flow {

/// Returns std::nullopt when the flow on `graph` is a valid s-t flow of
/// value `expected_flow`; otherwise a human-readable description of the
/// first violation found.
std::optional<std::string> validate_flow(const Graph& graph, NodeId source,
                                         NodeId sink,
                                         FlowUnit expected_flow);

/// True iff the residual graph contains a negative-cost cycle (i.e., the
/// current flow is NOT min-cost for its value).
bool has_negative_residual_cycle(const Graph& graph);

}  // namespace rasc::flow
