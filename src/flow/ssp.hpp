// Successive-shortest-path min-cost flow with Johnson potentials.
//
// This is the production solver RASC's composer calls (paper §3.5 reduces
// rate-splitting composition to min-cost flow and cites Edmonds–Karp and
// Goldberg). Composition graphs have nonnegative costs (drop ratios), so
// each augmentation is a pure Dijkstra; a Bellman–Ford bootstrap handles
// negative costs for generality (and for the random property tests).
//
// The solver is a reusable object: its Dijkstra/DFS workspaces, heap
// storage, and flattened adjacency snapshot persist across calls, and the
// node potentials can be warm-started between the composer's repair
// iterations (see DESIGN.md "Solver internals & performance").
#pragma once

#include <cstdint>
#include <vector>

#include "flow/graph.hpp"

namespace rasc::flow {

struct SolveResult {
  FlowUnit flow = 0;  // amount actually routed (<= demand)
  Cost cost = 0;      // total cost of that flow
  /// True iff the full demand was routed.
  bool feasible = false;
};

struct SolveOptions {
  /// Caller certifies every arc cost is >= 0, so the per-call negative-arc
  /// scan and the Bellman–Ford bootstrap are skipped. Composition graphs
  /// always qualify (costs are drop ratios).
  bool assume_nonnegative_costs = false;
  /// Reuse the potentials left by the previous solve on a graph with the
  /// same structure_key(). They are validated in one O(arcs) pass (capacity
  /// edits can invalidate them) and discarded when stale, so this is always
  /// safe — just faster when the caller re-solves after small capacity
  /// changes, as the composer's repair loop does.
  bool warm_start = false;
};

/// Reusable min-cost-flow solver.
///
/// One instance holds all per-solve scratch state:
///  - dist / parent_arc / potential vectors, sized once per node count,
///  - the Dijkstra binary-heap storage,
///  - a flattened (CSR) adjacency snapshot keyed by Graph::structure_key(),
///    rebuilt only when the topology actually changes,
///  - DFS cursors for phase-batched augmentation: after each Dijkstra the
///    solver saturates *all* zero-reduced-cost augmenting paths it can find
///    (a partial blocking flow) before re-running Dijkstra, instead of one
///    shortest path per Dijkstra.
///
/// Not thread-safe; use one instance per thread.
class SspSolver {
 public:
  /// Routes up to `demand` units from `source` to `sink` at minimum cost.
  /// The flow is left on `graph` (query via Graph::flow). When the network
  /// cannot carry the full demand, the result carries the max routable
  /// amount (still at min cost for that amount) and feasible == false.
  SolveResult solve(Graph& graph, NodeId source, NodeId sink,
                    FlowUnit demand, const SolveOptions& options = {});

 private:
  void sync_topology(const Graph& graph);
  bool has_negative_arc(const Graph& graph) const;
  bool potentials_valid(const Graph& graph) const;
  bool bellman_ford(const Graph& graph, NodeId source);
  /// Returns false when `sink` is unreachable in the residual graph.
  bool dijkstra(const Graph& graph, NodeId source, NodeId sink);
  /// DFS for one augmenting path of zero reduced cost; fills path_.
  bool find_admissible_path(const Graph& graph, NodeId source, NodeId sink);

  void pull_caps(const Graph& graph);
  void write_back_flow(Graph& graph) const;

  // Flattened adjacency snapshot (all residual arcs, tail-major), plus
  // head/cost copies for cache-friendly scans. Residual capacities are
  // pulled into cap_ (indexed by CSR position, so the Dijkstra and DFS
  // scans stay sequential) at solve start and written back at the end.
  std::uint64_t csr_key_ = 0;
  std::vector<std::int32_t> first_out_;  // size n+1
  std::vector<ArcId> csr_arc_;
  std::vector<NodeId> csr_head_;
  std::vector<Cost> csr_cost_;
  std::vector<std::int32_t> twin_pos_;   // CSR position of the twin arc
  std::vector<std::int32_t> arc_pos_;    // ArcId -> CSR position
  std::vector<FlowUnit> cap_;            // residual capacity, by position

  // Per-solve workspace. The Dijkstra queue is a radix heap: labels are
  // monotone (never below the last popped key), so buckets keyed by the
  // highest bit differing from the last popped key give amortized O(1)
  // pushes and cheap pops — measurably faster than a binary heap here.
  std::vector<Cost> dist_;
  std::vector<Cost> pi_;
  static constexpr int kRadixBuckets = 64;
  std::vector<std::pair<Cost, NodeId>> radix_[kRadixBuckets];
  std::uint64_t radix_mask_ = 0;  // bit i set iff radix_[i] is nonempty
  std::vector<std::int32_t> cursor_;   // DFS current-arc, per node
  std::vector<std::int32_t> path_;     // CSR positions of the DFS path
  std::vector<NodeId> on_path_;
  std::vector<char> on_path_flag_;
};

/// One-shot convenience wrapper around SspSolver. Uses a thread-local
/// solver instance, so repeated calls from the same thread still reuse
/// buffers and the adjacency snapshot.
SolveResult min_cost_flow_ssp(Graph& graph, NodeId source, NodeId sink,
                              FlowUnit demand);

}  // namespace rasc::flow
