// Successive-shortest-path min-cost flow with Johnson potentials.
//
// This is the production solver RASC's composer calls (paper §3.5 reduces
// rate-splitting composition to min-cost flow and cites Edmonds–Karp and
// Goldberg). Composition graphs have nonnegative costs (drop ratios), so
// each augmentation is a pure Dijkstra; a Bellman–Ford bootstrap handles
// negative costs for generality (and for the random property tests).
#pragma once

#include <cstdint>

#include "flow/graph.hpp"

namespace rasc::flow {

struct SolveResult {
  FlowUnit flow = 0;  // amount actually routed (<= demand)
  Cost cost = 0;      // total cost of that flow
  /// True iff the full demand was routed.
  bool feasible = false;
};

/// Routes up to `demand` units from `source` to `sink` at minimum cost.
/// The flow is left on `graph` (query via Graph::flow). When the network
/// cannot carry the full demand, the result carries the max routable amount
/// (still at min cost for that amount) and feasible == false.
SolveResult min_cost_flow_ssp(Graph& graph, NodeId source, NodeId sink,
                              FlowUnit demand);

}  // namespace rasc::flow
