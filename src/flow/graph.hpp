// Residual flow network.
//
// Arcs are stored in forward/backward pairs (arc 2k is the k-th forward arc,
// arc 2k+1 its residual twin); `cap` holds *residual* capacity, so pushing
// flow just moves capacity between twins. Costs and capacities are int64:
// the composer scales drop ratios by 1e6 and rates to integral Kbps, which
// keeps all arithmetic exact (paper §3.5 costs are drop ratios in [0,1]).
#pragma once

#include <cstdint>
#include <vector>

namespace rasc::flow {

using NodeId = std::int32_t;
using ArcId = std::int32_t;
using FlowUnit = std::int64_t;
using Cost = std::int64_t;

constexpr FlowUnit kInfiniteCap = INT64_MAX / 4;

class Graph {
 public:
  /// Adds one node; returns its id (dense, starting at 0).
  NodeId add_node();

  /// Adds `n` nodes; returns the id of the first.
  NodeId add_nodes(std::int32_t n);

  /// Adds a directed arc tail->head with capacity `cap` >= 0 and per-unit
  /// cost `cost` (may be negative). Returns the forward ArcId (always even).
  ArcId add_arc(NodeId tail, NodeId head, FlowUnit cap, Cost cost);

  std::int32_t num_nodes() const { return std::int32_t(adjacency_.size()); }
  std::int32_t num_arcs() const { return std::int32_t(arcs_.size()) / 2; }

  /// Flow currently routed on forward arc `a` (= residual cap of its twin).
  FlowUnit flow(ArcId a) const { return arcs_[std::size_t(a ^ 1)].cap; }

  /// Original capacity of forward arc `a`.
  FlowUnit capacity(ArcId a) const {
    return arcs_[std::size_t(a)].cap + arcs_[std::size_t(a ^ 1)].cap;
  }

  Cost cost(ArcId a) const { return arcs_[std::size_t(a)].cost; }
  NodeId head(ArcId a) const { return arcs_[std::size_t(a)].head; }
  NodeId tail(ArcId a) const { return arcs_[std::size_t(a ^ 1)].head; }

  /// Removes all flow (restores residual capacities to original).
  void clear_flow();

  /// Rewrites the capacity of forward arc `a` (and zeroes its residual
  /// twin). Any flow currently on the arc is discarded, so callers
  /// normally clear_flow() around a batch of capacity edits. Does not
  /// change the graph's structure_key(): topology is unchanged.
  void set_capacity(ArcId a, FlowUnit cap);

  /// Rewrites the per-unit cost of forward arc `a` (twin gets -cost).
  /// Bumps structure_key(): solver adjacency snapshots bake costs in, so
  /// a cost edit must invalidate them like a topology change would.
  void set_cost(ArcId a, Cost cost);

  /// Identifies this graph's *topology* (node/arc structure, costs).
  /// Changes whenever a node or arc is added; copies share the key with
  /// their original (their topology is identical). Solvers use it to keep
  /// adjacency caches valid across capacity edits and flow resets.
  std::uint64_t structure_key() const { return structure_key_; }

  /// Total cost of the current flow assignment (sum over forward arcs).
  Cost total_cost() const;

  // --- Low-level residual access (solvers and validator) ---
  struct RawArc {
    NodeId head;
    FlowUnit cap;  // residual capacity
    Cost cost;
  };
  const RawArc& raw(ArcId a) const { return arcs_[std::size_t(a)]; }
  const std::vector<ArcId>& out_arcs(NodeId n) const {
    return adjacency_[std::size_t(n)];
  }
  /// Pushes `amount` along residual arc `a` (reduces its residual capacity,
  /// grows the twin's). Requires amount <= raw(a).cap.
  void push(ArcId a, FlowUnit amount);

 private:
  static std::uint64_t next_structure_key();

  std::vector<RawArc> arcs_;
  std::vector<std::vector<ArcId>> adjacency_;
  std::vector<FlowUnit> original_cap_;  // per forward arc, for clear_flow()
  std::uint64_t structure_key_ = next_structure_key();
};

}  // namespace rasc::flow
