#include "flow/graph.hpp"

#include <atomic>
#include <cassert>

namespace rasc::flow {

std::uint64_t Graph::next_structure_key() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

NodeId Graph::add_node() {
  adjacency_.emplace_back();
  structure_key_ = next_structure_key();
  return NodeId(adjacency_.size() - 1);
}

NodeId Graph::add_nodes(std::int32_t n) {
  const NodeId first = NodeId(adjacency_.size());
  adjacency_.resize(adjacency_.size() + std::size_t(n));
  structure_key_ = next_structure_key();
  return first;
}

ArcId Graph::add_arc(NodeId tail, NodeId head, FlowUnit cap, Cost cost) {
  assert(tail >= 0 && tail < num_nodes());
  assert(head >= 0 && head < num_nodes());
  assert(cap >= 0);
  const ArcId id = ArcId(arcs_.size());
  arcs_.push_back(RawArc{head, cap, cost});
  arcs_.push_back(RawArc{tail, 0, -cost});
  adjacency_[std::size_t(tail)].push_back(id);
  adjacency_[std::size_t(head)].push_back(id + 1);
  original_cap_.push_back(cap);
  structure_key_ = next_structure_key();
  return id;
}

void Graph::set_capacity(ArcId a, FlowUnit cap) {
  assert(a >= 0 && std::size_t(a) < arcs_.size() && (a % 2) == 0);
  assert(cap >= 0);
  arcs_[std::size_t(a)].cap = cap;
  arcs_[std::size_t(a ^ 1)].cap = 0;
  original_cap_[std::size_t(a) / 2] = cap;
}

void Graph::set_cost(ArcId a, Cost cost) {
  assert(a >= 0 && std::size_t(a) < arcs_.size() && (a % 2) == 0);
  if (arcs_[std::size_t(a)].cost == cost) return;
  arcs_[std::size_t(a)].cost = cost;
  arcs_[std::size_t(a ^ 1)].cost = -cost;
  structure_key_ = next_structure_key();
}

void Graph::push(ArcId a, FlowUnit amount) {
  assert(amount >= 0 && amount <= arcs_[std::size_t(a)].cap);
  arcs_[std::size_t(a)].cap -= amount;
  arcs_[std::size_t(a ^ 1)].cap += amount;
}

void Graph::clear_flow() {
  for (std::size_t k = 0; k < original_cap_.size(); ++k) {
    arcs_[2 * k].cap = original_cap_[k];
    arcs_[2 * k + 1].cap = 0;
  }
}

Cost Graph::total_cost() const {
  Cost total = 0;
  for (std::int32_t k = 0; k < num_arcs(); ++k) {
    total += flow(ArcId(2 * k)) * cost(ArcId(2 * k));
  }
  return total;
}

}  // namespace rasc::flow
