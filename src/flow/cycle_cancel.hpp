// Cycle-cancelling min-cost flow (Klein's algorithm).
//
// Deliberately independent of the SSP solver: it first routes a maximum
// feasible flow ignoring costs (BFS augmentation, Edmonds–Karp style), then
// repeatedly cancels negative-cost residual cycles found by Bellman–Ford.
// It is slower but structurally different, which makes it a strong
// cross-check: the property tests assert both solvers reach the same
// objective on random instances.
#pragma once

#include "flow/graph.hpp"
#include "flow/ssp.hpp"

namespace rasc::flow {

/// Same contract as min_cost_flow_ssp.
SolveResult min_cost_flow_cycle_cancel(Graph& graph, NodeId source,
                                       NodeId sink, FlowUnit demand);

}  // namespace rasc::flow
