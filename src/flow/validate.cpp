#include "flow/validate.hpp"

#include <sstream>
#include <vector>

namespace rasc::flow {

std::optional<std::string> validate_flow(const Graph& graph, NodeId source,
                                         NodeId sink,
                                         FlowUnit expected_flow) {
  std::vector<FlowUnit> net(std::size_t(graph.num_nodes()), 0);
  for (std::int32_t k = 0; k < graph.num_arcs(); ++k) {
    const ArcId a = ArcId(2 * k);
    const FlowUnit f = graph.flow(a);
    if (f < 0) {
      std::ostringstream os;
      os << "arc " << a << " has negative flow " << f;
      return os.str();
    }
    if (f > graph.capacity(a)) {
      std::ostringstream os;
      os << "arc " << a << " flow " << f << " exceeds capacity "
         << graph.capacity(a);
      return os.str();
    }
    net[std::size_t(graph.tail(a))] += f;
    net[std::size_t(graph.head(a))] -= f;
  }
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (v == source || v == sink) continue;
    if (net[std::size_t(v)] != 0) {
      std::ostringstream os;
      os << "conservation violated at node " << v << ": net out-flow "
         << net[std::size_t(v)];
      return os.str();
    }
  }
  if (net[std::size_t(source)] != expected_flow) {
    std::ostringstream os;
    os << "source emits " << net[std::size_t(source)] << ", expected "
       << expected_flow;
    return os.str();
  }
  if (net[std::size_t(sink)] != -expected_flow) {
    std::ostringstream os;
    os << "sink absorbs " << -net[std::size_t(sink)] << ", expected "
       << expected_flow;
    return os.str();
  }
  return std::nullopt;
}

bool has_negative_residual_cycle(const Graph& graph) {
  const auto n = std::size_t(graph.num_nodes());
  std::vector<Cost> dist(n, 0);
  for (std::size_t round = 0; round < n; ++round) {
    bool changed = false;
    for (NodeId u = 0; u < graph.num_nodes(); ++u) {
      for (ArcId a : graph.out_arcs(u)) {
        const auto& arc = graph.raw(a);
        if (arc.cap <= 0) continue;
        if (dist[std::size_t(u)] + arc.cost < dist[std::size_t(arc.head)]) {
          dist[std::size_t(arc.head)] = dist[std::size_t(u)] + arc.cost;
          changed = true;
        }
      }
    }
    if (!changed) return false;
  }
  return true;
}

}  // namespace rasc::flow
