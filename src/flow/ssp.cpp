#include "flow/ssp.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>
#include <utility>

namespace rasc::flow {

namespace {

constexpr Cost kInfCost = std::numeric_limits<Cost>::max() / 4;

/// Radix-heap bucket for `key`, given the last popped key. Keys equal to
/// `last` go to bucket 0; otherwise the bucket is indexed by the highest
/// differing bit (+1).
inline int radix_bucket(std::uint64_t key, std::uint64_t last) {
  return key == last ? 0 : 64 - std::countl_zero(key ^ last);
}

}  // namespace

void SspSolver::sync_topology(const Graph& graph) {
  if (csr_key_ == graph.structure_key() &&
      first_out_.size() == std::size_t(graph.num_nodes()) + 1) {
    return;
  }
  const auto n = std::size_t(graph.num_nodes());
  const auto m = std::size_t(graph.num_arcs()) * 2;
  first_out_.assign(n + 1, 0);
  csr_arc_.clear();
  csr_head_.clear();
  csr_cost_.clear();
  csr_arc_.reserve(m);
  csr_head_.reserve(m);
  csr_cost_.reserve(m);
  arc_pos_.resize(m);
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    first_out_[std::size_t(u)] = std::int32_t(csr_arc_.size());
    for (ArcId a : graph.out_arcs(u)) {
      arc_pos_[std::size_t(a)] = std::int32_t(csr_arc_.size());
      const auto& arc = graph.raw(a);
      csr_arc_.push_back(a);
      csr_head_.push_back(arc.head);
      csr_cost_.push_back(arc.cost);
    }
  }
  first_out_[n] = std::int32_t(csr_arc_.size());
  twin_pos_.resize(m);
  for (std::size_t pos = 0; pos < m; ++pos) {
    twin_pos_[pos] = arc_pos_[std::size_t(csr_arc_[pos] ^ 1)];
  }
  csr_key_ = graph.structure_key();
}

void SspSolver::pull_caps(const Graph& graph) {
  // Arc-major: sequential reads of the graph's arc array, scattered writes
  // into cap_ (stores are cheaper to scatter than loads).
  const auto m = csr_arc_.size();
  cap_.resize(m);
  for (std::size_t a = 0; a < m; ++a) {
    cap_[std::size_t(arc_pos_[a])] = graph.raw(ArcId(a)).cap;
  }
}

void SspSolver::write_back_flow(Graph& graph) const {
  for (std::size_t a = 0; a < csr_arc_.size(); a += 2) {
    const FlowUnit delta =
        graph.raw(ArcId(a)).cap - cap_[std::size_t(arc_pos_[a])];
    if (delta > 0) {
      graph.push(ArcId(a), delta);
    } else if (delta < 0) {
      graph.push(ArcId(a) ^ 1, -delta);
    }
  }
}

bool SspSolver::has_negative_arc(const Graph&) const {
  for (std::size_t pos = 0; pos < csr_arc_.size(); ++pos) {
    if (csr_cost_[pos] < 0 && cap_[pos] > 0) return true;
  }
  return false;
}

bool SspSolver::potentials_valid(const Graph&) const {
  const auto n = std::size_t(first_out_.size()) - 1;
  if (pi_.size() != n) return false;
  for (std::size_t u = 0; u < n; ++u) {
    for (std::int32_t pos = first_out_[u]; pos < first_out_[u + 1]; ++pos) {
      if (cap_[std::size_t(pos)] <= 0) continue;
      const Cost reduced = csr_cost_[std::size_t(pos)] + pi_[u] -
                           pi_[std::size_t(csr_head_[std::size_t(pos)])];
      if (reduced < 0) return false;
    }
  }
  return true;
}

/// Bellman–Ford from `source` to initialize potentials when negative-cost
/// arcs exist. Returns false if a negative cycle is reachable (caller
/// treats this as a precondition violation).
bool SspSolver::bellman_ford(const Graph&, NodeId source) {
  const auto n = std::size_t(first_out_.size()) - 1;
  pi_.assign(n, kInfCost);
  pi_[std::size_t(source)] = 0;
  for (std::size_t round = 0; round < n; ++round) {
    bool changed = false;
    for (std::size_t u = 0; u < n; ++u) {
      if (pi_[u] >= kInfCost) continue;
      for (std::int32_t pos = first_out_[u]; pos < first_out_[u + 1];
           ++pos) {
        if (cap_[std::size_t(pos)] <= 0) continue;
        const Cost nd = pi_[u] + csr_cost_[std::size_t(pos)];
        const auto v = std::size_t(csr_head_[std::size_t(pos)]);
        if (nd < pi_[v]) {
          pi_[v] = nd;
          changed = true;
        }
      }
    }
    if (!changed) return true;
    if (round + 1 == n && changed) return false;
  }
  return true;
}

bool SspSolver::dijkstra(const Graph&, NodeId source, NodeId sink) {
  const auto n = std::size_t(first_out_.size()) - 1;
  dist_.assign(n, kInfCost);
  while (radix_mask_ != 0) {  // leftovers from an early-exited prior phase
    const int b = std::countr_zero(radix_mask_);
    radix_[b].clear();
    radix_mask_ &= radix_mask_ - 1;
  }
  dist_[std::size_t(source)] = 0;
  std::uint64_t last = 0;  // last popped key; labels are monotone
  radix_[0].emplace_back(0, source);
  radix_mask_ = 1;
  while (radix_mask_ != 0) {
    int b = std::countr_zero(radix_mask_);
    if (b > 0) {
      // Move `last` to the bucket's minimum and redistribute: every entry
      // now differs from `last` below bit b-1, so it lands in a lower
      // bucket (each entry moves O(64) times total).
      auto& bucket = radix_[b];
      std::uint64_t mn = std::uint64_t(bucket.front().first);
      for (const auto& e : bucket) {
        mn = std::min(mn, std::uint64_t(e.first));
      }
      last = mn;
      for (const auto& e : bucket) {
        const int nb = radix_bucket(std::uint64_t(e.first), last);
        assert(nb < b);
        radix_[nb].push_back(e);
        radix_mask_ |= std::uint64_t(1) << nb;
      }
      bucket.clear();
      radix_mask_ &= ~(std::uint64_t(1) << b);
      // The bucket minimum always lands in bucket 0, popped next.
    }
    const auto [d, u] = radix_[0].back();
    radix_[0].pop_back();
    if (radix_[0].empty()) radix_mask_ &= ~std::uint64_t(1);
    if (d > dist_[std::size_t(u)]) continue;
    if (u == sink) break;  // all other labels are >= dist[sink] already
    for (std::int32_t pos = first_out_[std::size_t(u)];
         pos < first_out_[std::size_t(u) + 1]; ++pos) {
      if (cap_[std::size_t(pos)] <= 0) continue;
      const NodeId v = csr_head_[std::size_t(pos)];
      const Cost reduced = csr_cost_[std::size_t(pos)] +
                           pi_[std::size_t(u)] - pi_[std::size_t(v)];
      assert(reduced >= 0 && "reduced cost must be nonnegative");
      const Cost nd = d + reduced;
      if (nd < dist_[std::size_t(v)]) {
        dist_[std::size_t(v)] = nd;
        const int nb = radix_bucket(std::uint64_t(nd), last);
        assert(nb < kRadixBuckets);
        radix_[nb].emplace_back(nd, v);
        radix_mask_ |= std::uint64_t(1) << nb;
      }
    }
  }
  if (dist_[std::size_t(sink)] >= kInfCost) return false;

  // Update potentials; cap unreached/unsettled nodes at dist[sink] to keep
  // all residual reduced costs nonnegative after augmentation.
  const Cost dt = dist_[std::size_t(sink)];
  for (std::size_t v = 0; v < n; ++v) {
    pi_[v] += std::min(dist_[v], dt);
  }
  return true;
}

bool SspSolver::find_admissible_path(const Graph&, NodeId source,
                                     NodeId sink) {
  path_.clear();
  on_path_.clear();
  on_path_flag_[std::size_t(source)] = 1;
  on_path_.push_back(source);
  NodeId u = source;
  bool found = false;
  for (;;) {
    if (u == sink) {
      found = true;
      break;
    }
    bool descended = false;
    for (std::int32_t& pos = cursor_[std::size_t(u)];
         pos < first_out_[std::size_t(u) + 1]; ++pos) {
      if (cap_[std::size_t(pos)] <= 0) continue;
      const NodeId v = csr_head_[std::size_t(pos)];
      if (on_path_flag_[std::size_t(v)]) continue;
      if (csr_cost_[std::size_t(pos)] + pi_[std::size_t(u)] -
              pi_[std::size_t(v)] !=
          0) {
        continue;
      }
      path_.push_back(pos);
      on_path_flag_[std::size_t(v)] = 1;
      on_path_.push_back(v);
      u = v;
      descended = true;
      break;
    }
    if (descended) continue;
    if (u == source) break;  // exhausted: no admissible s-t path remains
    // Retreat: drop the last path arc and skip past it at its tail.
    const std::int32_t pos = path_.back();
    (void)pos;
    path_.pop_back();
    on_path_flag_[std::size_t(u)] = 0;
    on_path_.pop_back();
    u = on_path_.back();
    assert(cursor_[std::size_t(u)] == pos);
    ++cursor_[std::size_t(u)];
  }
  for (NodeId v : on_path_) on_path_flag_[std::size_t(v)] = 0;
  return found;
}

SolveResult SspSolver::solve(Graph& graph, NodeId source, NodeId sink,
                             FlowUnit demand, const SolveOptions& options) {
  assert(source != sink);
  assert(demand >= 0);
  const auto n = std::size_t(graph.num_nodes());

  const bool same_topology =
      csr_key_ == graph.structure_key() && pi_.size() == n;
  sync_topology(graph);
  pull_caps(graph);

  const bool warm =
      options.warm_start && same_topology && potentials_valid(graph);
  if (!warm) {
    const bool has_negative =
        options.assume_nonnegative_costs ? false : has_negative_arc(graph);
    if (has_negative) {
      const bool ok = bellman_ford(graph, source);
      assert(ok && "negative cycle in composition graph");
      (void)ok;
      // Unreachable nodes keep a large-but-finite potential so reduced
      // costs stay well-defined; they can never lie on an s-t path anyway.
      for (auto& p : pi_) {
        if (p >= kInfCost) p = kInfCost;
      }
    } else {
      pi_.assign(n, 0);
    }
  }

  on_path_flag_.assign(n, 0);
  cursor_.resize(n);

  SolveResult result;
  while (result.flow < demand && dijkstra(graph, source, sink)) {
    // Phase augmentation: saturate zero-reduced-cost paths until the DFS
    // finds none (or demand is met), then re-price with another Dijkstra.
    // Augmenting only along reduced-cost-0 paths preserves the SSP
    // optimality invariant, and batching paths per Dijkstra is what makes
    // large demands cheap on wide composition graphs.
    std::copy(first_out_.begin(), first_out_.end() - 1, cursor_.begin());
    while (result.flow < demand &&
           find_admissible_path(graph, source, sink)) {
      FlowUnit push_amount = demand - result.flow;
      for (const std::int32_t pos : path_) {
        push_amount = std::min(push_amount, cap_[std::size_t(pos)]);
      }
      for (const std::int32_t pos : path_) {
        cap_[std::size_t(pos)] -= push_amount;
        cap_[std::size_t(twin_pos_[std::size_t(pos)])] += push_amount;
      }
      result.flow += push_amount;
    }
  }

  write_back_flow(graph);
  result.cost = graph.total_cost();
  result.feasible = (result.flow == demand);
  return result;
}

SolveResult min_cost_flow_ssp(Graph& graph, NodeId source, NodeId sink,
                              FlowUnit demand) {
  thread_local SspSolver solver;
  return solver.solve(graph, source, sink, demand);
}

}  // namespace rasc::flow
