#include "flow/ssp.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>
#include <vector>

namespace rasc::flow {

namespace {

constexpr Cost kInfCost = std::numeric_limits<Cost>::max() / 4;

/// Bellman–Ford from `source` to initialize potentials when negative-cost
/// arcs exist. Returns false if a negative cycle is reachable (caller
/// treats this as a precondition violation).
bool bellman_ford_potentials(const Graph& g, NodeId source,
                             std::vector<Cost>& pi) {
  const auto n = std::size_t(g.num_nodes());
  pi.assign(n, kInfCost);
  pi[std::size_t(source)] = 0;
  for (std::size_t round = 0; round < n; ++round) {
    bool changed = false;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (pi[std::size_t(u)] >= kInfCost) continue;
      for (ArcId a : g.out_arcs(u)) {
        const auto& arc = g.raw(a);
        if (arc.cap <= 0) continue;
        const Cost nd = pi[std::size_t(u)] + arc.cost;
        if (nd < pi[std::size_t(arc.head)]) {
          pi[std::size_t(arc.head)] = nd;
          changed = true;
        }
      }
    }
    if (!changed) return true;
    if (round + 1 == n && changed) return false;
  }
  return true;
}

}  // namespace

SolveResult min_cost_flow_ssp(Graph& graph, NodeId source, NodeId sink,
                              FlowUnit demand) {
  assert(source != sink);
  assert(demand >= 0);
  const auto n = std::size_t(graph.num_nodes());

  bool has_negative = false;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (ArcId a : graph.out_arcs(u)) {
      if (graph.raw(a).cap > 0 && graph.raw(a).cost < 0) {
        has_negative = true;
        break;
      }
    }
    if (has_negative) break;
  }

  std::vector<Cost> pi(n, 0);
  if (has_negative) {
    const bool ok = bellman_ford_potentials(graph, source, pi);
    assert(ok && "negative cycle in composition graph");
    (void)ok;
    // Unreachable nodes keep a large-but-finite potential so reduced costs
    // stay well-defined; they can never lie on an s-t path anyway.
    for (auto& p : pi) {
      if (p >= kInfCost) p = kInfCost;
    }
  }

  SolveResult result;
  std::vector<Cost> dist(n);
  std::vector<ArcId> parent_arc(n);

  while (result.flow < demand) {
    // Dijkstra on reduced costs.
    dist.assign(n, kInfCost);
    parent_arc.assign(n, -1);
    using QEntry = std::pair<Cost, NodeId>;
    std::priority_queue<QEntry, std::vector<QEntry>, std::greater<>> pq;
    dist[std::size_t(source)] = 0;
    pq.emplace(0, source);
    while (!pq.empty()) {
      const auto [d, u] = pq.top();
      pq.pop();
      if (d > dist[std::size_t(u)]) continue;
      for (ArcId a : graph.out_arcs(u)) {
        const auto& arc = graph.raw(a);
        if (arc.cap <= 0) continue;
        const Cost reduced =
            arc.cost + pi[std::size_t(u)] - pi[std::size_t(arc.head)];
        assert(reduced >= 0 && "reduced cost must be nonnegative");
        const Cost nd = d + reduced;
        if (nd < dist[std::size_t(arc.head)]) {
          dist[std::size_t(arc.head)] = nd;
          parent_arc[std::size_t(arc.head)] = a;
          pq.emplace(nd, arc.head);
        }
      }
    }
    if (dist[std::size_t(sink)] >= kInfCost) break;  // sink unreachable

    // Update potentials; cap unreached nodes at dist[sink] to keep all
    // residual reduced costs nonnegative after augmentation.
    const Cost dt = dist[std::size_t(sink)];
    for (std::size_t v = 0; v < n; ++v) {
      pi[v] += std::min(dist[v], dt);
    }

    // Bottleneck along the shortest path.
    FlowUnit push_amount = demand - result.flow;
    for (NodeId v = sink; v != source; v = graph.tail(parent_arc[std::size_t(v)])) {
      push_amount = std::min(push_amount, graph.raw(parent_arc[std::size_t(v)]).cap);
    }
    for (NodeId v = sink; v != source; v = graph.tail(parent_arc[std::size_t(v)])) {
      graph.push(parent_arc[std::size_t(v)], push_amount);
    }
    result.flow += push_amount;
  }

  result.cost = graph.total_cost();
  result.feasible = (result.flow == demand);
  return result;
}

}  // namespace rasc::flow
