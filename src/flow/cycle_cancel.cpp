#include "flow/cycle_cancel.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <limits>
#include <vector>

namespace rasc::flow {

namespace {

/// BFS augmentation until `demand` routed or no augmenting path remains.
FlowUnit max_flow_bfs(Graph& g, NodeId source, NodeId sink,
                      FlowUnit demand) {
  FlowUnit routed = 0;
  const auto n = std::size_t(g.num_nodes());
  std::vector<ArcId> parent(n);
  while (routed < demand) {
    std::fill(parent.begin(), parent.end(), ArcId(-1));
    std::deque<NodeId> queue{source};
    parent[std::size_t(source)] = -2;
    bool found = false;
    while (!queue.empty() && !found) {
      const NodeId u = queue.front();
      queue.pop_front();
      for (ArcId a : g.out_arcs(u)) {
        const auto& arc = g.raw(a);
        if (arc.cap <= 0 || parent[std::size_t(arc.head)] != -1) continue;
        parent[std::size_t(arc.head)] = a;
        if (arc.head == sink) {
          found = true;
          break;
        }
        queue.push_back(arc.head);
      }
    }
    if (!found) break;
    FlowUnit bottleneck = demand - routed;
    for (NodeId v = sink; v != source; v = g.tail(parent[std::size_t(v)])) {
      bottleneck = std::min(bottleneck, g.raw(parent[std::size_t(v)]).cap);
    }
    for (NodeId v = sink; v != source; v = g.tail(parent[std::size_t(v)])) {
      g.push(parent[std::size_t(v)], bottleneck);
    }
    routed += bottleneck;
  }
  return routed;
}

/// Finds a negative-cost cycle in the residual graph via Bellman–Ford with
/// a virtual super-source. Returns the cycle as arc ids, or empty.
std::vector<ArcId> find_negative_cycle(const Graph& g) {
  const auto n = std::size_t(g.num_nodes());
  std::vector<Cost> dist(n, 0);  // virtual source connects to all at cost 0
  std::vector<ArcId> parent(n, -1);
  NodeId touched = -1;
  for (std::size_t round = 0; round < n; ++round) {
    touched = -1;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      for (ArcId a : g.out_arcs(u)) {
        const auto& arc = g.raw(a);
        if (arc.cap <= 0) continue;
        if (dist[std::size_t(u)] + arc.cost < dist[std::size_t(arc.head)]) {
          dist[std::size_t(arc.head)] = dist[std::size_t(u)] + arc.cost;
          parent[std::size_t(arc.head)] = a;
          touched = arc.head;
        }
      }
    }
    if (touched < 0) return {};  // converged, no negative cycle
  }
  // `touched` is on or reachable from a negative cycle; walk back n steps
  // to land inside the cycle, then collect it.
  NodeId v = touched;
  for (std::size_t i = 0; i < n; ++i) v = g.tail(parent[std::size_t(v)]);
  std::vector<ArcId> cycle;
  NodeId u = v;
  do {
    const ArcId a = parent[std::size_t(u)];
    cycle.push_back(a);
    u = g.tail(a);
  } while (u != v);
  return cycle;
}

}  // namespace

SolveResult min_cost_flow_cycle_cancel(Graph& graph, NodeId source,
                                       NodeId sink, FlowUnit demand) {
  assert(source != sink);
  SolveResult result;
  result.flow = max_flow_bfs(graph, source, sink, demand);
  result.feasible = (result.flow == demand);

  for (;;) {
    const auto cycle = find_negative_cycle(graph);
    if (cycle.empty()) break;
    FlowUnit bottleneck = kInfiniteCap;
    for (ArcId a : cycle) {
      bottleneck = std::min(bottleneck, graph.raw(a).cap);
    }
    assert(bottleneck > 0);
    for (ArcId a : cycle) graph.push(a, bottleneck);
  }

  result.cost = graph.total_cost();
  return result;
}

}  // namespace rasc::flow
